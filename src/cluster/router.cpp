#include "cluster/router.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/protocol.h"

namespace et {
namespace cluster {

namespace {

/// Blocking connect with an explicit deadline: the socket goes
/// non-blocking for connect()+poll(), then back to blocking with
/// SO_RCVTIMEO/SO_SNDTIMEO covering every later call.
Result<int> DialWithTimeout(const std::string& host, int port,
                            int connect_timeout_ms, int io_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad shard address: " + host);
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const Status st =
        Status::IOError(std::string("connect: ") + strerror(errno));
    ::close(fd);
    return st;
  }
  if (rc != 0) {
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    rc = ::poll(&pfd, 1, connect_timeout_ms);
    if (rc <= 0) {
      ::close(fd);
      return Status::IOError(rc == 0 ? "connect timed out"
                                     : std::string("poll: ") +
                                           strerror(errno));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status::IOError(std::string("connect: ") + strerror(err));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  timeval tv;
  tv.tv_sec = io_timeout_ms / 1000;
  tv.tv_usec = (io_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Writes the whole buffer; `*sent` reports progress even on failure so
/// the caller can distinguish "frame never left" from "frame partially
/// on the wire".
Status SendAll(int fd, const std::string& data, size_t* sent) {
  *sent = 0;
  while (*sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + *sent, data.size() - *sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      *sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(std::string("send: ") + strerror(errno));
  }
  return Status::OK();
}

/// Reads exactly one response frame (the connection is request/response
/// lockstep, so the first completed frame is the answer).
Status RecvFrame(int fd, size_t max_frame_bytes, std::string* payload) {
  serve::FrameParser parser(max_frame_bytes);
  std::vector<std::string> frames;
  char buf[16384];
  while (frames.empty()) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return Status::IOError("connection closed by shard");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + strerror(errno));
    }
    ET_RETURN_NOT_OK(parser.Feed(buf, static_cast<size_t>(n), &frames));
  }
  *payload = std::move(frames.front());
  return Status::OK();
}

std::string EncodeRequestPayload(uint64_t id, const std::string& method,
                                 const obs::JsonValue& params) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"method\":\"" +
                    obs::JsonWriter::Escape(method) + "\",\"params\":";
  if (params.kind == obs::JsonValue::Kind::kObject) {
    out += obs::WriteJson(params);
  } else {
    out += "{}";
  }
  out += "}";
  return out;
}

}  // namespace

struct Router::Backend {
  ShardConfig config;
  std::mutex pool_mu;
  std::vector<int> idle;
};

Result<std::unique_ptr<Router>> Router::Start(const RouterOptions& options) {
  if (options.shards.empty()) {
    return Status::InvalidArgument("router needs at least one shard");
  }
  for (const ShardConfig& shard : options.shards) {
    if (shard.name.empty()) {
      return Status::InvalidArgument("shard name must not be empty");
    }
    if (shard.port <= 0 || shard.port > 65535) {
      return Status::InvalidArgument("shard " + shard.name +
                                     ": bad port " +
                                     std::to_string(shard.port));
    }
  }
  for (size_t i = 0; i < options.shards.size(); ++i) {
    for (size_t j = i + 1; j < options.shards.size(); ++j) {
      if (options.shards[i].name == options.shards[j].name) {
        return Status::InvalidArgument("duplicate shard name: " +
                                       options.shards[i].name);
      }
    }
  }
  // A forwarded request holds a pool worker for its whole backend
  // round trip, so the one-worker-per-core default would serialize
  // forwards on small machines — and deadlock outright when a shard
  // runs in the same process (the blocked forward occupies the worker
  // the backend's own dispatch needs). Size the pool for the useful
  // concurrency: one worker per pooled backend connection, plus slack
  // for in-process servers and local admin requests.
  ThreadPool::Global().EnsureWorkers(
      static_cast<size_t>(options.pool_size) * options.shards.size() + 4);
  std::unique_ptr<Router> router(new Router(options));
  router->health_->Start();
  return router;
}

Router::Router(const RouterOptions& options)
    : options_(options), ring_(options.virtual_nodes) {
  std::vector<std::string> names;
  for (const ShardConfig& shard : options_.shards) {
    auto backend = std::make_unique<Backend>();
    backend->config = shard;
    backends_.push_back(std::move(backend));
    ring_.AddShard(shard.name);
    names.push_back(shard.name);
  }
  health_ = std::make_unique<HealthChecker>(
      options_.health, names,
      [this](const std::string& shard) { return ProbeShard(shard); });
  health_->SetOnDown([this](const std::string& shard) { OnShardDown(shard); });
  health_->SetOnUp([this](const std::string& shard) { OnShardUp(shard); });
}

Router::~Router() {
  Stop();
  for (const std::unique_ptr<Backend>& backend : backends_) {
    std::lock_guard<std::mutex> lock(backend->pool_mu);
    for (int fd : backend->idle) ::close(fd);
    backend->idle.clear();
  }
}

void Router::Stop() {
  if (stopped_.exchange(true)) return;
  health_->Stop();
}

void Router::BeginDrain() {
  if (!draining_.exchange(true)) ET_COUNTER_INC("cluster.drain.begun");
}

bool Router::TryBeginRequest() {
  size_t current = inflight_.load(std::memory_order_relaxed);
  while (true) {
    if (current >= options_.max_inflight) return false;
    if (inflight_.compare_exchange_weak(current, current + 1,
                                        std::memory_order_acquire)) {
      return true;
    }
  }
}

void Router::EndRequest() {
  inflight_.fetch_sub(1, std::memory_order_release);
}

Router::Backend* Router::FindBackend(const std::string& shard) {
  for (const std::unique_ptr<Backend>& backend : backends_) {
    if (backend->config.name == shard) return backend.get();
  }
  return nullptr;
}

std::string Router::RingPlace(const std::string& id) {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_.ShardFor(id);
}

std::string Router::ShardForSession(const std::string& session_id) {
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    auto it = routes_.find(session_id);
    if (it != routes_.end() && !it->second.shard.empty()) {
      return it->second.shard;
    }
  }
  return RingPlace(session_id);
}

Result<std::string> Router::AcquireRoute(const std::string& id) {
  std::lock_guard<std::mutex> lock(routes_mu_);
  Route& route = routes_[id];
  if (route.migrating) {
    return Status::Unavailable("session " + id + " is migrating");
  }
  if (route.shard.empty()) {
    std::string placed;
    {
      std::lock_guard<std::mutex> ring_lock(ring_mu_);
      placed = ring_.ShardFor(id);
    }
    if (placed.empty()) {
      if (route.inflight == 0) routes_.erase(id);
      return Status::Unavailable("no healthy shard available");
    }
    route.shard = placed;
  }
  ++route.inflight;
  return route.shard;
}

void Router::ReleaseRoute(const std::string& id) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    auto it = routes_.find(id);
    if (it == routes_.end()) return;
    if (--it->second.inflight == 0) notify = true;
  }
  if (notify) routes_cv_.notify_all();
}

Status Router::CallShard(const std::string& shard,
                         const std::string& request,
                         std::string* response) {
  Backend* backend = FindBackend(shard);
  if (backend == nullptr) {
    return Status::InvalidArgument("unknown shard: " + shard);
  }
  if (health_->IsDown(shard)) {
    return Status::Unavailable("shard " + shard + " is down");
  }
  int fd = -1;
  bool pooled = false;
  {
    std::lock_guard<std::mutex> lock(backend->pool_mu);
    if (!backend->idle.empty()) {
      fd = backend->idle.back();
      backend->idle.pop_back();
      pooled = true;
    }
  }
  if (fd < 0) {
    Result<int> dialed =
        DialWithTimeout(backend->config.host, backend->config.port,
                        options_.connect_timeout_ms, options_.call_timeout_ms);
    if (!dialed.ok()) {
      health_->RecordFailure(shard);
      // The connection never existed, so the frame provably never
      // reached the shard: safe for the client to retry blindly.
      return Status::Unavailable("shard " + shard + " unreachable: " +
                                 dialed.status().message());
    }
    fd = *dialed;
  }
  const std::string frame = serve::EncodeFrame(request);
  size_t sent = 0;
  Status st = SendAll(fd, frame, &sent);
  if (!st.ok()) {
    ::close(fd);
    health_->RecordFailure(shard);
    if (sent == 0) {
      // Zero bytes left this process; the shard only dispatches
      // *complete* frames, so the request was never applied. (A stale
      // pooled connection whose first write fails lands here too.)
      return Status::Unavailable("shard " + shard +
                                 " write failed before any bytes: " +
                                 st.message());
    }
    return Status::IOError("outcome unknown: partial write to shard " +
                           shard + ": " + st.message());
  }
  st = RecvFrame(fd, serve::kDefaultMaxFrameBytes, response);
  if (!st.ok()) {
    ::close(fd);
    health_->RecordFailure(shard);
    if (pooled && sent == frame.size()) {
      // A pooled connection the shard had already closed can swallow a
      // full send into a dead socket; we cannot prove non-delivery, so
      // the honest answer is outcome-unknown and the client resyncs
      // via session.get.
    }
    return Status::IOError("outcome unknown: no response from shard " +
                           shard + ": " + st.message());
  }
  health_->RecordSuccess(shard);
  {
    std::lock_guard<std::mutex> lock(backend->pool_mu);
    if (backend->idle.size() < options_.pool_size &&
        !stopped_.load(std::memory_order_relaxed)) {
      backend->idle.push_back(fd);
      fd = -1;
    }
  }
  if (fd >= 0) ::close(fd);
  return Status::OK();
}

Status Router::ProbeShard(const std::string& shard) {
  Backend* backend = FindBackend(shard);
  if (backend == nullptr) {
    return Status::InvalidArgument("unknown shard: " + shard);
  }
  Result<int> dialed =
      DialWithTimeout(backend->config.host, backend->config.port,
                      options_.probe_timeout_ms, options_.probe_timeout_ms);
  if (!dialed.ok()) return dialed.status();
  const int fd = *dialed;
  static const std::string kProbe =
      "{\"id\":1,\"method\":\"stats.scrape\",\"params\":{}}";
  const std::string frame = serve::EncodeFrame(kProbe);
  size_t sent = 0;
  Status st = SendAll(fd, frame, &sent);
  if (st.ok()) {
    std::string response;
    st = RecvFrame(fd, serve::kDefaultMaxFrameBytes, &response);
  }
  ::close(fd);
  return st;
}

void Router::ClearPool(const std::string& shard) {
  Backend* backend = FindBackend(shard);
  if (backend == nullptr) return;
  std::vector<int> doomed;
  {
    std::lock_guard<std::mutex> lock(backend->pool_mu);
    doomed.swap(backend->idle);
  }
  for (int fd : doomed) ::close(fd);
}

void Router::OnShardDown(const std::string& shard) {
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    ring_.RemoveShard(shard);
  }
  ClearPool(shard);
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.shard_down;
  }
  if (!options_.enable_failover || stopped_.load(std::memory_order_relaxed)) {
    return;
  }
  Backend* dead = FindBackend(shard);
  if (dead == nullptr || dead->config.journal_dir.empty()) return;

  // The adopter is the dead shard's ring successor *after* removal —
  // deterministic, so a restarted router (or an operator reading the
  // docs) can predict where sessions went.
  std::string adopter;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    adopter = ring_.ShardFor(shard);
  }
  if (adopter.empty()) return;  // no survivors; nothing to adopt onto

  obs::JsonValue params;
  params.kind = obs::JsonValue::Kind::kObject;
  obs::JsonValue dir;
  dir.kind = obs::JsonValue::Kind::kString;
  dir.string_value = dead->config.journal_dir;
  params.object.emplace("journal_dir", std::move(dir));
  const std::string adopt = EncodeRequestPayload(1, "admin.adopt", params);

  for (int attempt = 0; attempt < 5; ++attempt) {
    if (stopped_.load(std::memory_order_relaxed)) return;
    std::string payload;
    const Status st = CallShard(adopter, adopt, &payload);
    if (st.ok()) {
      Result<serve::Response> response = serve::ParseResponse(payload);
      if (response.ok() && response->ok) {
        size_t adopted = 0;
        const obs::JsonValue* sessions = response->result.Find("sessions");
        if (sessions != nullptr && sessions->is_array()) {
          std::lock_guard<std::mutex> lock(routes_mu_);
          for (const obs::JsonValue& id : sessions->array) {
            if (!id.is_string()) continue;
            routes_[id.string_value].shard = adopter;
            ++adopted;
          }
        }
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.failovers;
          counters_.sessions_failed_over += adopted;
        }
        ET_COUNTER_INC("cluster.failover");
        ET_COUNTER_ADD("cluster.sessions.failed_over",
                       static_cast<uint64_t>(adopted));
        return;
      }
      // The adopter answered but refused (draining, transient IO
      // error); fall through to retry.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50 * (attempt + 1)));
  }
  ET_COUNTER_INC("cluster.failover.abandoned");
}

void Router::OnShardUp(const std::string& shard) {
  if (FindBackend(shard) == nullptr) return;
  ClearPool(shard);
  std::lock_guard<std::mutex> lock(ring_mu_);
  ring_.AddShard(shard);
}

Result<std::string> Router::HandleCreate(serve::Request request,
                                         std::string* response_payload) {
  std::string session_id;
  if (request.params.kind != obs::JsonValue::Kind::kObject) {
    request.params.kind = obs::JsonValue::Kind::kObject;
  }
  const obs::JsonValue* provided = request.params.Find("session_id");
  if (provided != nullptr) {
    if (!provided->is_string() || provided->string_value.empty()) {
      return Status::InvalidArgument("session_id must be a non-empty string");
    }
    session_id = provided->string_value;
  } else {
    session_id = options_.id_prefix +
                 std::to_string(next_session_.fetch_add(1));
    obs::JsonValue id_value;
    id_value.kind = obs::JsonValue::Kind::kString;
    id_value.string_value = session_id;
    request.params.object.emplace("session_id", std::move(id_value));
  }

  Result<std::string> route = AcquireRoute(session_id);
  if (!route.ok()) return route.status();
  const std::string& shard = *route;
  const std::string payload =
      EncodeRequestPayload(request.id, request.method, request.params);
  const Status st = CallShard(shard, payload, response_payload);
  ReleaseRoute(session_id);
  if (!st.ok()) return st;
  return session_id;
}

Result<std::string> Router::HandleForward(const serve::Request& request,
                                          const std::string& payload,
                                          std::string* response_payload) {
  const obs::JsonValue* id_value = request.params.Find("session_id");
  if (id_value == nullptr || !id_value->is_string() ||
      id_value->string_value.empty()) {
    return Status::InvalidArgument("missing params.session_id");
  }
  const std::string& session_id = id_value->string_value;
  Result<std::string> route = AcquireRoute(session_id);
  if (!route.ok()) return route.status();
  const Status st = CallShard(*route, payload, response_payload);
  ReleaseRoute(session_id);
  if (!st.ok()) return st;
  return session_id;
}

Result<std::string> Router::HandleMigrate(const serve::Request& request) {
  const obs::JsonValue* id_value = request.params.Find("session_id");
  if (id_value == nullptr || !id_value->is_string() ||
      id_value->string_value.empty()) {
    return Status::InvalidArgument("missing params.session_id");
  }
  const obs::JsonValue* target_value = request.params.Find("target");
  if (target_value == nullptr || !target_value->is_string() ||
      target_value->string_value.empty()) {
    return Status::InvalidArgument("missing params.target");
  }
  const std::string session_id = id_value->string_value;
  const std::string target = target_value->string_value;
  if (FindBackend(target) == nullptr) {
    return Status::InvalidArgument("unknown target shard: " + target);
  }
  if (health_->IsDown(target)) {
    return Status::Unavailable("target shard " + target + " is down");
  }

  std::string owner;
  {
    std::unique_lock<std::mutex> lock(routes_mu_);
    Route& route = routes_[session_id];
    if (route.migrating) {
      return Status::Unavailable("session " + session_id +
                                 " is already migrating");
    }
    if (route.shard.empty()) {
      std::string placed;
      {
        std::lock_guard<std::mutex> ring_lock(ring_mu_);
        placed = ring_.ShardFor(session_id);
      }
      if (placed.empty()) {
        if (route.inflight == 0) routes_.erase(session_id);
        return Status::Unavailable("no healthy shard available");
      }
      route.shard = placed;
    }
    owner = route.shard;
    if (owner == target) {
      return std::string("{\"session_id\":\"") +
             obs::JsonWriter::Escape(session_id) + "\",\"from\":\"" +
             obs::JsonWriter::Escape(owner) + "\",\"to\":\"" +
             obs::JsonWriter::Escape(target) + "\",\"moved\":false}";
    }
    route.migrating = true;
    const bool drained = routes_cv_.wait_for(
        lock, std::chrono::seconds(5),
        [&] { return routes_[session_id].inflight == 0; });
    if (!drained) {
      routes_[session_id].migrating = false;
      return Status::DeadlineExceeded(
          "in-flight requests on " + session_id + " did not drain");
    }
  }

  auto unpin = [this, &session_id]() {
    std::lock_guard<std::mutex> lock(routes_mu_);
    auto it = routes_.find(session_id);
    if (it != routes_.end()) it->second.migrating = false;
  };

  // 1. Snapshot on the current owner, payload returned inline.
  obs::JsonValue snap_params;
  snap_params.kind = obs::JsonValue::Kind::kObject;
  {
    obs::JsonValue v;
    v.kind = obs::JsonValue::Kind::kString;
    v.string_value = session_id;
    snap_params.object.emplace("session_id", std::move(v));
    obs::JsonValue rp;
    rp.kind = obs::JsonValue::Kind::kBool;
    rp.bool_value = true;
    snap_params.object.emplace("return_payload", std::move(rp));
  }
  std::string payload;
  Status st = CallShard(
      owner, EncodeRequestPayload(1, "session.snapshot", snap_params),
      &payload);
  if (!st.ok()) {
    unpin();
    return st;
  }
  Result<serve::Response> snap = serve::ParseResponse(payload);
  if (!snap.ok()) {
    unpin();
    return snap.status();
  }
  if (!snap->ok) {
    unpin();
    return Status(snap->code, "snapshot on " + owner + ": " + snap->message);
  }
  const obs::JsonValue* snapshot = snap->result.Find("snapshot");
  if (snapshot == nullptr || !snapshot->is_string()) {
    unpin();
    return Status::Internal("shard " + owner +
                            " returned no inline snapshot payload");
  }

  // 2. Restore on the target from the inline payload.
  obs::JsonValue restore_params;
  restore_params.kind = obs::JsonValue::Kind::kObject;
  {
    obs::JsonValue v;
    v.kind = obs::JsonValue::Kind::kString;
    v.string_value = session_id;
    restore_params.object.emplace("session_id", std::move(v));
    obs::JsonValue s;
    s.kind = obs::JsonValue::Kind::kString;
    s.string_value = snapshot->string_value;
    restore_params.object.emplace("snapshot", std::move(s));
  }
  st = CallShard(target,
                 EncodeRequestPayload(1, "session.restore", restore_params),
                 &payload);
  if (!st.ok()) {
    unpin();
    return st;
  }
  Result<serve::Response> restored = serve::ParseResponse(payload);
  if (!restored.ok()) {
    unpin();
    return restored.status();
  }
  if (!restored->ok) {
    unpin();
    return Status(restored->code,
                  "restore on " + target + ": " + restored->message);
  }

  // 3. Close on the old owner. Best-effort: the target already has the
  // state, and an orphaned copy on the owner is unreachable (the pin
  // below routes everything to the target).
  obs::JsonValue close_params;
  close_params.kind = obs::JsonValue::Kind::kObject;
  {
    obs::JsonValue v;
    v.kind = obs::JsonValue::Kind::kString;
    v.string_value = session_id;
    close_params.object.emplace("session_id", std::move(v));
  }
  std::string close_response;
  (void)CallShard(owner,
                  EncodeRequestPayload(1, "session.close", close_params),
                  &close_response);

  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    Route& route = routes_[session_id];
    route.shard = target;
    route.migrating = false;
  }
  routes_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.migrations;
  }
  ET_COUNTER_INC("cluster.migrations");

  return std::string("{\"session_id\":\"") +
         obs::JsonWriter::Escape(session_id) + "\",\"from\":\"" +
         obs::JsonWriter::Escape(owner) + "\",\"to\":\"" +
         obs::JsonWriter::Escape(target) + "\",\"moved\":true}";
}

std::string Router::StatsJson() const {
  RouterCounters counters = this->counters();
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("router");
  w.Bool(true);
  w.Key("cluster");
  w.BeginObject();
  w.Key("forwarded");
  w.Uint(counters.forwarded);
  w.Key("unavailable");
  w.Uint(counters.unavailable);
  w.Key("outcome_unknown");
  w.Uint(counters.outcome_unknown);
  w.Key("shard_down");
  w.Uint(counters.shard_down);
  w.Key("failovers");
  w.Uint(counters.failovers);
  w.Key("sessions_failed_over");
  w.Uint(counters.sessions_failed_over);
  w.Key("migrations");
  w.Uint(counters.migrations);
  w.EndObject();
  w.Key("pinned_sessions");
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    w.Uint(routes_.size());
  }
  w.Key("inflight");
  w.Uint(inflight_.load(std::memory_order_relaxed));
  w.Key("draining");
  w.Bool(draining_.load(std::memory_order_acquire));
  w.Key("shards");
  w.BeginArray();
  for (const std::unique_ptr<Backend>& backend : backends_) {
    w.BeginObject();
    w.Key("name");
    w.String(backend->config.name);
    w.Key("host");
    w.String(backend->config.host);
    w.Key("port");
    w.Int(backend->config.port);
    w.Key("up");
    w.Bool(!health_->IsDown(backend->config.name));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Release();
}

RouterCounters Router::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

std::string Router::Handle(const std::string& request_payload,
                           serve::RequestInfo* info) {
  ET_TRACE_SCOPE("cluster.route");
  Result<serve::Request> parsed = serve::ParseRequest(request_payload);
  if (!parsed.ok()) {
    if (info != nullptr) info->ok = false;
    return serve::ErrorResponse(0, parsed.status());
  }
  const serve::Request& request = *parsed;
  if (info != nullptr) info->method = request.method;

  auto fail = [&](const Status& st) {
    if (info != nullptr) info->ok = false;
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      if (st.code() == StatusCode::kUnavailable) {
        ++counters_.unavailable;
      } else if (st.code() == StatusCode::kIOError) {
        ++counters_.outcome_unknown;
      }
    }
    if (st.code() == StatusCode::kUnavailable) {
      ET_COUNTER_INC("cluster.unavailable");
      return serve::ErrorResponse(request.id, st, options_.retry_after_ms);
    }
    if (st.code() == StatusCode::kIOError) {
      ET_COUNTER_INC("cluster.outcome_unknown");
    }
    return serve::ErrorResponse(request.id, st);
  };

  if (request.method == "server.ping") {
    size_t up = 0;
    for (const std::unique_ptr<Backend>& backend : backends_) {
      if (!health_->IsDown(backend->config.name)) ++up;
    }
    if (info != nullptr) info->ok = true;
    return serve::OkResponse(
        request.id, "{\"pong\":true,\"router\":true,\"shards\":" +
                        std::to_string(backends_.size()) +
                        ",\"shards_up\":" + std::to_string(up) + "}");
  }
  if (request.method == "stats.scrape") {
    if (info != nullptr) info->ok = true;
    return serve::OkResponse(request.id, StatsJson());
  }
  if (request.method == "admin.drain") {
    BeginDrain();
    if (info != nullptr) info->ok = true;
    return serve::OkResponse(request.id, "{\"draining\":true}");
  }

  const bool mutating = request.method != "session.get";
  if (draining_.load(std::memory_order_acquire) && mutating) {
    return fail(Status::Unavailable("router is draining"));
  }

  if (request.method == "admin.migrate") {
    Result<std::string> result = HandleMigrate(request);
    if (!result.ok()) return fail(result.status());
    if (info != nullptr) info->ok = true;
    return serve::OkResponse(request.id, *result);
  }

  std::string response_payload;
  Result<std::string> session_id =
      request.method == "session.create"
          ? HandleCreate(request, &response_payload)
          : (request.method.rfind("session.", 0) == 0
                 ? HandleForward(request, request_payload, &response_payload)
                 : Result<std::string>(Status::NotFound("unknown method: " +
                                                        request.method)));
  if (info != nullptr && session_id.ok()) info->session_id = *session_id;
  if (!session_id.ok()) return fail(session_id.status());

  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.forwarded;
  }
  ET_COUNTER_INC("cluster.requests.forwarded");
  if (info != nullptr) {
    Result<serve::Response> response = serve::ParseResponse(response_payload);
    info->ok = response.ok() && response->ok;
  }
  return response_payload;
}

}  // namespace cluster
}  // namespace et
