#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/protocol.h"

namespace et {
namespace cluster {

namespace {

std::string EncodeRequestPayload(uint64_t id, const std::string& method,
                                 const obs::JsonValue& params) {
  std::string out = "{\"id\":" + std::to_string(id) + ",\"method\":\"" +
                    obs::JsonWriter::Escape(method) + "\",\"params\":";
  if (params.kind == obs::JsonValue::Kind::kObject) {
    out += obs::WriteJson(params);
  } else {
    out += "{}";
  }
  out += "}";
  return out;
}

// Rewrites the numeric id of a wire payload in place. Every encoder in
// this codebase — the serve client, this router, OkResponse /
// ErrorResponse — emits the id as the first key ({"id":N,...), so the
// rewrite is a pure prefix splice that leaves every other byte of the
// payload untouched. Returns false (payload unmodified) when the
// payload does not have that shape.
bool RewriteLeadingId(uint64_t id, std::string* payload) {
  static const char kPrefix[] = "{\"id\":";
  static const size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (payload->compare(0, kPrefixLen, kPrefix) != 0) return false;
  size_t end = kPrefixLen;
  while (end < payload->size() && (*payload)[end] >= '0' &&
         (*payload)[end] <= '9') {
    ++end;
  }
  if (end == kPrefixLen) return false;
  payload->replace(kPrefixLen, end - kPrefixLen, std::to_string(id));
  return true;
}

}  // namespace

struct Router::Backend {
  ShardConfig config;
  std::mutex pool_mu;
  std::vector<std::unique_ptr<serve::Connection>> idle;
};

Result<std::unique_ptr<Router>> Router::Start(const RouterOptions& options) {
  if (options.shards.empty()) {
    return Status::InvalidArgument("router needs at least one shard");
  }
  for (const ShardConfig& shard : options.shards) {
    if (shard.name.empty()) {
      return Status::InvalidArgument("shard name must not be empty");
    }
    if (shard.port <= 0 || shard.port > 65535) {
      return Status::InvalidArgument("shard " + shard.name +
                                     ": bad port " +
                                     std::to_string(shard.port));
    }
  }
  for (size_t i = 0; i < options.shards.size(); ++i) {
    for (size_t j = i + 1; j < options.shards.size(); ++j) {
      if (options.shards[i].name == options.shards[j].name) {
        return Status::InvalidArgument("duplicate shard name: " +
                                       options.shards[i].name);
      }
    }
  }
  std::unique_ptr<Router> router(new Router(options));
  if (options.background) {
    // A forwarded request holds a pool worker for its whole backend
    // round trip, so the one-worker-per-core default would serialize
    // forwards on small machines — and deadlock outright when a shard
    // runs in the same process (the blocked forward occupies the worker
    // the backend's own dispatch needs). Size the pool for the useful
    // concurrency: one worker per pooled backend connection, plus slack
    // for in-process servers and local admin requests.
    ThreadPool::Global().EnsureWorkers(
        static_cast<size_t>(options.pool_size) * options.shards.size() + 4);
    router->health_->Start();
  }
  return router;
}

Router::Router(const RouterOptions& options)
    : options_(options),
      transport_(options.transport ? options.transport
                                   : serve::RealTransport()),
      clock_(options.clock ? options.clock : RealClock()),
      ring_(options.virtual_nodes) {
  std::vector<std::string> names;
  for (const ShardConfig& shard : options_.shards) {
    auto backend = std::make_unique<Backend>();
    backend->config = shard;
    backends_.push_back(std::move(backend));
    ring_.AddShard(shard.name);
    names.push_back(shard.name);
  }
  health_ = std::make_unique<HealthChecker>(
      options_.health, names,
      [this](const std::string& shard) { return ProbeShard(shard); });
  health_->SetOnDown([this](const std::string& shard) { OnShardDown(shard); });
  health_->SetOnUp([this](const std::string& shard) { OnShardUp(shard); });
}

Router::~Router() {
  Stop();
  for (const std::unique_ptr<Backend>& backend : backends_) {
    std::lock_guard<std::mutex> lock(backend->pool_mu);
    backend->idle.clear();
  }
}

void Router::Stop() {
  if (stopped_.exchange(true)) return;
  health_->Stop();
}

void Router::BeginDrain() {
  if (!draining_.exchange(true)) ET_COUNTER_INC("cluster.drain.begun");
}

bool Router::TryBeginRequest() {
  size_t current = inflight_.load(std::memory_order_relaxed);
  while (true) {
    if (current >= options_.max_inflight) return false;
    if (inflight_.compare_exchange_weak(current, current + 1,
                                        std::memory_order_acquire)) {
      return true;
    }
  }
}

void Router::EndRequest() {
  inflight_.fetch_sub(1, std::memory_order_release);
}

Router::Backend* Router::FindBackend(const std::string& shard) {
  for (const std::unique_ptr<Backend>& backend : backends_) {
    if (backend->config.name == shard) return backend.get();
  }
  return nullptr;
}

std::string Router::RingPlace(const std::string& id) {
  std::lock_guard<std::mutex> lock(ring_mu_);
  return ring_.ShardFor(id);
}

std::string Router::ShardForSession(const std::string& session_id) {
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    auto it = routes_.find(session_id);
    if (it != routes_.end() && !it->second.shard.empty()) {
      return it->second.shard;
    }
  }
  return RingPlace(session_id);
}

Result<std::string> Router::AcquireRoute(const std::string& id) {
  std::lock_guard<std::mutex> lock(routes_mu_);
  Route& route = routes_[id];
  if (route.migrating) {
    return Status::Unavailable("session " + id + " is migrating");
  }
  if (route.shard.empty()) {
    std::string placed;
    {
      std::lock_guard<std::mutex> ring_lock(ring_mu_);
      placed = ring_.ShardFor(id);
    }
    if (placed.empty()) {
      if (route.inflight == 0) routes_.erase(id);
      return Status::Unavailable("no healthy shard available");
    }
    route.shard = placed;
  }
  ++route.inflight;
  return route.shard;
}

void Router::ReleaseRoute(const std::string& id) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    auto it = routes_.find(id);
    if (it == routes_.end()) return;
    if (--it->second.inflight == 0) notify = true;
  }
  if (notify) routes_cv_.notify_all();
}

Status Router::CallShard(const std::string& shard,
                         const std::string& request, uint64_t expect_id,
                         std::string* response) {
  Backend* backend = FindBackend(shard);
  if (backend == nullptr) {
    return Status::InvalidArgument("unknown shard: " + shard);
  }
  if (health_->IsDown(shard)) {
    return Status::Unavailable("shard " + shard + " is down");
  }
  std::unique_ptr<serve::Connection> conn;
  bool pooled = false;
  {
    std::lock_guard<std::mutex> lock(backend->pool_mu);
    if (!backend->idle.empty()) {
      conn = std::move(backend->idle.back());
      backend->idle.pop_back();
      pooled = true;
    }
  }
  // Backend connections are pooled and shared by every client the
  // router serves, and each client numbers its own requests from 1 —
  // two clients in lockstep mint identical ids, so matching responses
  // on the client's id cannot tell a stray frame left behind on a
  // pooled connection (a duplicated response, a late answer) from the
  // real one. Forwarded frames therefore travel under a router-wide
  // monotonic id: anything already sitting on a pooled connection
  // carries a strictly older id and can never match. The client's own
  // id is spliced back into the matched response before it is relayed,
  // so the relay stays byte-verbatim for every other byte.
  const uint64_t backend_id =
      next_backend_id_.fetch_add(1, std::memory_order_relaxed);
  std::string wire = request;
  const bool renumbered = RewriteLeadingId(backend_id, &wire);
  const uint64_t match_id = renumbered ? backend_id : expect_id;
  const std::string frame = serve::EncodeFrame(wire);
  // Up to two send attempts: a pooled connection the shard closed
  // while it idled fails its first write with zero bytes sent — the
  // frame provably never left, so discarding the stale connection and
  // retrying once on a fresh dial is safe, and turns "the pool went
  // stale" from a spurious kUnavailable into a success. The stale
  // write is not reported to the health checker (the connection was
  // dead, not the shard); only the fresh attempt's outcome counts.
  for (int attempt = 0;; ++attempt) {
    if (conn == nullptr) {
      serve::DialOptions dial;
      dial.connect_timeout_ms = options_.connect_timeout_ms;
      dial.io_timeout_ms = options_.call_timeout_ms;
      Result<std::unique_ptr<serve::Connection>> dialed = transport_->Dial(
          backend->config.host, backend->config.port, dial);
      if (!dialed.ok()) {
        health_->RecordFailure(shard);
        // The connection never existed, so the frame provably never
        // reached the shard: safe for the client to retry blindly.
        return Status::Unavailable("shard " + shard + " unreachable: " +
                                   dialed.status().message());
      }
      conn = std::move(*dialed);
    }
    size_t sent = 0;
    Status st = conn->SendAll(frame, &sent);
    if (!st.ok()) {
      if (sent == 0) {
        if (pooled && attempt == 0) {
          conn.reset();  // stale pooled connection; retry fresh
          pooled = false;
          continue;
        }
        health_->RecordFailure(shard);
        // Zero bytes left this process; the shard only dispatches
        // *complete* frames, so the request was never applied.
        return Status::Unavailable("shard " + shard +
                                   " write failed before any bytes: " +
                                   st.message());
      }
      health_->RecordFailure(shard);
      return Status::IOError("outcome unknown: partial write to shard " +
                             shard + ": " + st.message());
    }
    // Responses are matched to the request by id, like the serve
    // client does: a pooled connection can carry a stray frame from an
    // earlier exchange (a duplicated response, or a late answer to a
    // request we gave up on), and relaying it as THIS request's answer
    // would hand the caller a stale round. Strays are skipped, bounded
    // so a babbling peer cannot pin us here.
    bool matched = false;
    for (int frames = 0; frames < 4 && !matched; ++frames) {
      st = serve::RecvOneFrame(conn.get(), serve::kDefaultMaxFrameBytes,
                               response);
      if (!st.ok()) {
        health_->RecordFailure(shard);
        // Even a pooled connection that swallowed the full send into a
        // dead socket lands here: we cannot prove non-delivery, so the
        // honest answer is outcome-unknown and the client resyncs via
        // session.get.
        return Status::IOError("outcome unknown: no response from shard " +
                               shard + ": " + st.message());
      }
      Result<serve::Response> parsed = serve::ParseResponse(*response);
      // An unparsable frame is surfaced to the caller unchanged; only
      // a well-formed response for a *different* id is a stray.
      matched = !parsed.ok() || parsed->id == match_id;
      if (!matched) ET_COUNTER_INC("cluster.call.stray_response");
    }
    if (!matched) {
      // The connection is babbling; drop it and surface the ambiguity
      // (the request was sent — it may have been applied). The shard
      // answered frames, so this is not held against its health.
      return Status::IOError("outcome unknown: shard " + shard +
                             " answered with mismatched response ids");
    }
    break;
  }
  if (renumbered) {
    RewriteLeadingId(expect_id, response);
  }
  health_->RecordSuccess(shard);
  {
    std::lock_guard<std::mutex> lock(backend->pool_mu);
    if (backend->idle.size() < options_.pool_size &&
        !stopped_.load(std::memory_order_relaxed)) {
      backend->idle.push_back(std::move(conn));
    }
  }
  return Status::OK();
}

Status Router::ProbeShard(const std::string& shard) {
  Backend* backend = FindBackend(shard);
  if (backend == nullptr) {
    return Status::InvalidArgument("unknown shard: " + shard);
  }
  serve::DialOptions dial;
  dial.connect_timeout_ms = options_.probe_timeout_ms;
  dial.io_timeout_ms = options_.probe_timeout_ms;
  Result<std::unique_ptr<serve::Connection>> dialed =
      transport_->Dial(backend->config.host, backend->config.port, dial);
  if (!dialed.ok()) return dialed.status();
  static const std::string kProbe =
      "{\"id\":1,\"method\":\"stats.scrape\",\"params\":{}}";
  const std::string frame = serve::EncodeFrame(kProbe);
  size_t sent = 0;
  Status st = (*dialed)->SendAll(frame, &sent);
  if (st.ok()) {
    std::string response;
    st = serve::RecvOneFrame(dialed->get(), serve::kDefaultMaxFrameBytes,
                             &response);
  }
  return st;
}

void Router::ClearPool(const std::string& shard) {
  Backend* backend = FindBackend(shard);
  if (backend == nullptr) return;
  std::vector<std::unique_ptr<serve::Connection>> doomed;
  {
    std::lock_guard<std::mutex> lock(backend->pool_mu);
    doomed.swap(backend->idle);
  }
  doomed.clear();
}

void Router::OnShardDown(const std::string& shard) {
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    ring_.RemoveShard(shard);
  }
  ClearPool(shard);
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.shard_down;
  }
  if (!options_.enable_failover || stopped_.load(std::memory_order_relaxed)) {
    return;
  }
  Backend* dead = FindBackend(shard);
  if (dead == nullptr || dead->config.journal_dir.empty()) return;

  // The adopter is the dead shard's ring successor *after* removal —
  // deterministic, so a restarted router (or an operator reading the
  // docs) can predict where sessions went.
  std::string adopter;
  {
    std::lock_guard<std::mutex> lock(ring_mu_);
    adopter = ring_.ShardFor(shard);
  }
  if (adopter.empty()) return;  // no survivors; nothing to adopt onto
  ET_LOG(Info) << "failover: shard " << shard << " down, adopter "
               << adopter;

  obs::JsonValue params;
  params.kind = obs::JsonValue::Kind::kObject;
  obs::JsonValue dir;
  dir.kind = obs::JsonValue::Kind::kString;
  dir.string_value = dead->config.journal_dir;
  params.object.emplace("journal_dir", std::move(dir));
  const std::string adopt = EncodeRequestPayload(1, "admin.adopt", params);

  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    adopting_.insert(shard);
  }
  bool adopt_acked = false;
  for (int attempt = 0; attempt < 5 && !adopt_acked; ++attempt) {
    if (stopped_.load(std::memory_order_relaxed)) return;
    std::string payload;
    const Status st = CallShard(adopter, adopt, 1, &payload);
    if (st.ok()) {
      Result<serve::Response> response = serve::ParseResponse(payload);
      if (response.ok() && response->ok) {
        size_t adopted = 0;
        std::string adopted_ids;
        const obs::JsonValue* sessions = response->result.Find("sessions");
        if (sessions != nullptr && sessions->is_array()) {
          std::lock_guard<std::mutex> lock(routes_mu_);
          for (const obs::JsonValue& id : sessions->array) {
            if (!id.is_string()) continue;
            Route& route = routes_[id.string_value];
            // The old owner may only be *declared* dead and still hold
            // this session live at a stale round; record the fencing
            // debt so OnShardUp evicts that copy before the shard
            // serves again. Debt accrues against the routed shard AND
            // against `shard` itself when they differ: a journal can
            // sit in `shard`'s directory without the route ever having
            // pointed there — an earlier adoption that moved it in but
            // whose response was lost left `shard` holding a live copy
            // the router never learned about.
            if (!route.shard.empty() && route.shard != adopter) {
              fenced_[route.shard].push_back(id.string_value);
            }
            if (shard != adopter && shard != route.shard) {
              fenced_[shard].push_back(id.string_value);
            }
            route.shard = adopter;
            ++adopted;
            adopted_ids += (adopted_ids.empty() ? "" : ",") + id.string_value;
          }
        }
        ET_LOG(Info) << "failover: " << adopter << " adopted " << adopted
                     << " session(s) from " << shard << " [" << adopted_ids
                     << "] (attempt " << attempt + 1 << ")";
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.failovers;
          counters_.sessions_failed_over += adopted;
        }
        ET_COUNTER_INC("cluster.failover");
        ET_COUNTER_ADD("cluster.sessions.failed_over",
                       static_cast<uint64_t>(adopted));
        adopt_acked = true;
        break;
      }
      // The adopter answered but refused (draining, transient IO
      // error); fall through to retry.
    }
    clock_->SleepForMillis(50.0 * (attempt + 1));
  }
  // Lost-response recovery rides on the retries themselves: adoption
  // deletes the source journals, so a retried admin.adopt scans an
  // empty directory — but the adopter's cumulative adoption receipt
  // (see SessionManager::HandleAdopt) still lists every id previously
  // moved from that directory, and the repin above runs off the
  // receipt. Do NOT "verify" by scraping the adopter's live session
  // list instead: a session can be live on the adopter as a stale
  // pre-failover copy (a shard falsely declared down keeps serving
  // its sessions in memory even after its journals are adopted away),
  // and repinning to that zombie copy time-travels the client.
  if (!adopt_acked) {
    ET_LOG(Warn) << "failover: adoption of " << shard << " by " << adopter
                 << " abandoned after 5 attempts";
    ET_COUNTER_INC("cluster.failover.abandoned");
  }
  // Replay an up-transition that arrived while the adoption was in
  // progress (the adopt loop advances the clock, so probe timers fire
  // reentrantly and a flapping shard can report healthy mid-retry).
  // The rejoin was deferred so the fencing debt recorded by the repin
  // above is paid before the shard serves again.
  bool rejoin = false;
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    adopting_.erase(shard);
    rejoin = deferred_up_.erase(shard) > 0;
  }
  if (rejoin && !health_->IsDown(shard) &&
      !stopped_.load(std::memory_order_relaxed)) {
    OnShardUp(shard);
  }
}

void Router::OnShardUp(const std::string& shard) {
  if (FindBackend(shard) == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    if (adopting_.count(shard) != 0) {
      // This shard's journals are still being adopted away. Rejoining
      // now would re-admit a shard whose sessions are about to be
      // repinned elsewhere — with the fencing debt for its live copies
      // not recorded yet, so nothing would ever evict them. Park the
      // transition; OnShardDown replays it once the adoption settles.
      deferred_up_.insert(shard);
      ET_LOG(Info) << "failover: shard " << shard
                   << " back up; rejoin deferred until adoption settles";
      return;
    }
  }
  ET_LOG(Info) << "failover: shard " << shard << " back up";
  ClearPool(shard);
  // Pay the fencing debt before readmitting the shard: any session
  // failed over away from it while it was out may still be live there
  // as a stale copy (the shard was only declared dead — a partition
  // or fault burst, not a crash — or it restarted from journals that
  // adoption had not yet consumed). Serving from that copy would
  // time-travel the client, so evict it. admin.evict leaves durable
  // state alone; an id the shard no longer has is a cheap no-op.
  std::vector<std::string> fence;
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    auto it = fenced_.find(shard);
    if (it != fenced_.end()) {
      fence = std::move(it->second);
      fenced_.erase(it);
    }
  }
  for (size_t i = 0; i < fence.size(); ++i) {
    obs::JsonValue params;
    params.kind = obs::JsonValue::Kind::kObject;
    obs::JsonValue sid;
    sid.kind = obs::JsonValue::Kind::kString;
    sid.string_value = fence[i];
    params.object.emplace("session_id", std::move(sid));
    const std::string evict =
        EncodeRequestPayload(3, "admin.evict", params);
    std::string payload;
    const Status st = CallShard(shard, evict, 3, &payload);
    Result<serve::Response> response =
        st.ok() ? serve::ParseResponse(payload)
                : Result<serve::Response>(st);
    if (!response.ok() || !response->ok) {
      // Couldn't fence (the shard flapped again, the call faulted):
      // put the debt back so the next up-transition retries. The
      // session stays pinned to its current owner either way.
      std::lock_guard<std::mutex> lock(routes_mu_);
      std::vector<std::string>& requeued = fenced_[shard];
      requeued.insert(requeued.end(), fence.begin() + i, fence.end());
      ET_LOG(Warn) << "failover: fencing " << shard << " incomplete ("
                   << requeued.size() << " session(s) requeued)";
      return;
    }
    ET_COUNTER_INC("cluster.fence.evicted");
    ET_LOG(Info) << "failover: fenced stale copy of " << fence[i]
                 << " on " << shard;
  }
  std::lock_guard<std::mutex> lock(ring_mu_);
  ring_.AddShard(shard);
}

Result<std::string> Router::HandleCreate(serve::Request request,
                                         std::string* response_payload) {
  std::string session_id;
  if (request.params.kind != obs::JsonValue::Kind::kObject) {
    request.params.kind = obs::JsonValue::Kind::kObject;
  }
  const obs::JsonValue* provided = request.params.Find("session_id");
  if (provided != nullptr) {
    if (!provided->is_string() || provided->string_value.empty()) {
      return Status::InvalidArgument("session_id must be a non-empty string");
    }
    session_id = provided->string_value;
  } else {
    session_id = options_.id_prefix +
                 std::to_string(next_session_.fetch_add(1));
    obs::JsonValue id_value;
    id_value.kind = obs::JsonValue::Kind::kString;
    id_value.string_value = session_id;
    request.params.object.emplace("session_id", std::move(id_value));
  }

  Result<std::string> route = AcquireRoute(session_id);
  if (!route.ok()) return route.status();
  const std::string& shard = *route;
  const std::string payload =
      EncodeRequestPayload(request.id, request.method, request.params);
  Status st = CallShard(shard, payload, request.id, response_payload);
  // Same ownership re-check as HandleForward: if failover adopted this
  // session away while the create was in flight, the shard we called
  // may be a zombie whose copy the rejoin fence will destroy — make
  // the client resync rather than trust its ack.
  if (st.ok()) {
    std::string now;
    {
      std::lock_guard<std::mutex> lock(routes_mu_);
      auto it = routes_.find(session_id);
      if (it != routes_.end()) now = it->second.shard;
    }
    if (!now.empty() && now != shard) {
      ET_COUNTER_INC("cluster.forward.owner_moved");
      ET_LOG(Warn) << "create: " << session_id << " moved " << shard
                   << " -> " << now << " mid-call; discarding its reply";
      st = Status::IOError("outcome unknown: session " + session_id +
                           " failed over while the create was in flight");
    }
  }
  ReleaseRoute(session_id);
  if (!st.ok()) return st;
  return session_id;
}

Result<std::string> Router::HandleForward(const serve::Request& request,
                                          const std::string& payload,
                                          std::string* response_payload) {
  const obs::JsonValue* id_value = request.params.Find("session_id");
  if (id_value == nullptr || !id_value->is_string() ||
      id_value->string_value.empty()) {
    return Status::InvalidArgument("missing params.session_id");
  }
  const std::string& session_id = id_value->string_value;
  Result<std::string> route = AcquireRoute(session_id);
  if (!route.ok()) return route.status();
  std::string called = *route;
  Status st = CallShard(called, payload, request.id, response_payload);
  // A read is idempotent, so an outcome-unknown failure — a stale
  // pooled connection the shard closed while it idled, a response
  // lost in flight — is safe to retry on a fresh connection here
  // instead of bubbling "outcome unknown" to the client. Mutating
  // ops keep the strict contract: the client resolves via resync,
  // never a blind resend.
  for (int retry = 0;
       request.method == "session.get" && st.IsIOError() && retry < 2;
       ++retry) {
    st = CallShard(called, payload, request.id, response_payload);
  }
  // Ownership re-check. Failover can adopt this session's journals
  // away from `called` while the call above is in flight: the old
  // shard — falsely declared down, still alive — may apply the request
  // to its orphaned copy AFTER the adopter scanned the journal dir, so
  // its ack asserts state the new owner never inherited (and that the
  // rejoin fence will destroy). A success from a shard that no longer
  // owns the session is therefore untrustworthy. Reads re-run against
  // the new owner; mutations surface outcome-unknown so the client
  // resyncs and, if the write is indeed missing there, replays it
  // against the authoritative copy.
  for (int hop = 0; st.ok() && hop < 2; ++hop) {
    std::string now;
    {
      std::lock_guard<std::mutex> lock(routes_mu_);
      auto it = routes_.find(session_id);
      if (it != routes_.end()) now = it->second.shard;
    }
    if (now.empty() || now == called) break;
    ET_COUNTER_INC("cluster.forward.owner_moved");
    ET_LOG(Warn) << "forward: " << session_id << " moved " << called
                 << " -> " << now << " mid-call; discarding its reply";
    if (request.method != "session.get") {
      st = Status::IOError("outcome unknown: session " + session_id +
                           " failed over while the call was in flight");
      break;
    }
    called = now;
    st = CallShard(called, payload, request.id, response_payload);
  }
  ReleaseRoute(session_id);
  if (!st.ok()) return st;
  return session_id;
}

Result<std::string> Router::HandleMigrate(const serve::Request& request) {
  const obs::JsonValue* id_value = request.params.Find("session_id");
  if (id_value == nullptr || !id_value->is_string() ||
      id_value->string_value.empty()) {
    return Status::InvalidArgument("missing params.session_id");
  }
  const obs::JsonValue* target_value = request.params.Find("target");
  if (target_value == nullptr || !target_value->is_string() ||
      target_value->string_value.empty()) {
    return Status::InvalidArgument("missing params.target");
  }
  const std::string session_id = id_value->string_value;
  const std::string target = target_value->string_value;
  if (FindBackend(target) == nullptr) {
    return Status::InvalidArgument("unknown target shard: " + target);
  }
  if (health_->IsDown(target)) {
    return Status::Unavailable("target shard " + target + " is down");
  }

  std::string owner;
  {
    std::unique_lock<std::mutex> lock(routes_mu_);
    Route& route = routes_[session_id];
    if (route.migrating) {
      return Status::Unavailable("session " + session_id +
                                 " is already migrating");
    }
    if (route.shard.empty()) {
      std::string placed;
      {
        std::lock_guard<std::mutex> ring_lock(ring_mu_);
        placed = ring_.ShardFor(session_id);
      }
      if (placed.empty()) {
        if (route.inflight == 0) routes_.erase(session_id);
        return Status::Unavailable("no healthy shard available");
      }
      route.shard = placed;
    }
    owner = route.shard;
    if (owner == target) {
      return std::string("{\"session_id\":\"") +
             obs::JsonWriter::Escape(session_id) + "\",\"from\":\"" +
             obs::JsonWriter::Escape(owner) + "\",\"to\":\"" +
             obs::JsonWriter::Escape(target) + "\",\"moved\":false}";
    }
    route.migrating = true;
    const bool drained = routes_cv_.wait_for(
        lock, std::chrono::seconds(5),
        [&] { return routes_[session_id].inflight == 0; });
    if (!drained) {
      routes_[session_id].migrating = false;
      return Status::DeadlineExceeded(
          "in-flight requests on " + session_id + " did not drain");
    }
  }

  auto unpin = [this, &session_id]() {
    std::lock_guard<std::mutex> lock(routes_mu_);
    auto it = routes_.find(session_id);
    if (it != routes_.end()) it->second.migrating = false;
  };

  // 1. Snapshot on the current owner, payload returned inline.
  obs::JsonValue snap_params;
  snap_params.kind = obs::JsonValue::Kind::kObject;
  {
    obs::JsonValue v;
    v.kind = obs::JsonValue::Kind::kString;
    v.string_value = session_id;
    snap_params.object.emplace("session_id", std::move(v));
    obs::JsonValue rp;
    rp.kind = obs::JsonValue::Kind::kBool;
    rp.bool_value = true;
    snap_params.object.emplace("return_payload", std::move(rp));
  }
  std::string payload;
  Status st = CallShard(
      owner, EncodeRequestPayload(1, "session.snapshot", snap_params), 1,
      &payload);
  if (!st.ok()) {
    unpin();
    return st;
  }
  Result<serve::Response> snap = serve::ParseResponse(payload);
  if (!snap.ok()) {
    unpin();
    return snap.status();
  }
  if (!snap->ok) {
    unpin();
    return Status(snap->code, "snapshot on " + owner + ": " + snap->message);
  }
  const obs::JsonValue* snapshot = snap->result.Find("snapshot");
  if (snapshot == nullptr || !snapshot->is_string()) {
    unpin();
    return Status::Internal("shard " + owner +
                            " returned no inline snapshot payload");
  }

  // 2. Restore on the target from the inline payload.
  obs::JsonValue restore_params;
  restore_params.kind = obs::JsonValue::Kind::kObject;
  {
    obs::JsonValue v;
    v.kind = obs::JsonValue::Kind::kString;
    v.string_value = session_id;
    restore_params.object.emplace("session_id", std::move(v));
    obs::JsonValue s;
    s.kind = obs::JsonValue::Kind::kString;
    s.string_value = snapshot->string_value;
    restore_params.object.emplace("snapshot", std::move(s));
  }
  st = CallShard(target,
                 EncodeRequestPayload(1, "session.restore", restore_params),
                 1, &payload);
  if (!st.ok()) {
    unpin();
    return st;
  }
  Result<serve::Response> restored = serve::ParseResponse(payload);
  if (!restored.ok()) {
    unpin();
    return restored.status();
  }
  if (!restored->ok) {
    unpin();
    return Status(restored->code,
                  "restore on " + target + ": " + restored->message);
  }

  // 3. Close on the old owner. Best-effort: the target already has the
  // state, and an orphaned copy on the owner is unreachable (the pin
  // below routes everything to the target).
  obs::JsonValue close_params;
  close_params.kind = obs::JsonValue::Kind::kObject;
  {
    obs::JsonValue v;
    v.kind = obs::JsonValue::Kind::kString;
    v.string_value = session_id;
    close_params.object.emplace("session_id", std::move(v));
  }
  std::string close_response;
  (void)CallShard(owner,
                  EncodeRequestPayload(1, "session.close", close_params), 1,
                  &close_response);

  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    Route& route = routes_[session_id];
    route.shard = target;
    route.migrating = false;
  }
  routes_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.migrations;
  }
  ET_COUNTER_INC("cluster.migrations");

  return std::string("{\"session_id\":\"") +
         obs::JsonWriter::Escape(session_id) + "\",\"from\":\"" +
         obs::JsonWriter::Escape(owner) + "\",\"to\":\"" +
         obs::JsonWriter::Escape(target) + "\",\"moved\":true}";
}

std::string Router::StatsJson() const {
  RouterCounters counters = this->counters();
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("router");
  w.Bool(true);
  w.Key("cluster");
  w.BeginObject();
  w.Key("forwarded");
  w.Uint(counters.forwarded);
  w.Key("unavailable");
  w.Uint(counters.unavailable);
  w.Key("outcome_unknown");
  w.Uint(counters.outcome_unknown);
  w.Key("shard_down");
  w.Uint(counters.shard_down);
  w.Key("failovers");
  w.Uint(counters.failovers);
  w.Key("sessions_failed_over");
  w.Uint(counters.sessions_failed_over);
  w.Key("migrations");
  w.Uint(counters.migrations);
  w.EndObject();
  w.Key("pinned_sessions");
  {
    std::lock_guard<std::mutex> lock(routes_mu_);
    w.Uint(routes_.size());
  }
  w.Key("inflight");
  w.Uint(inflight_.load(std::memory_order_relaxed));
  w.Key("draining");
  w.Bool(draining_.load(std::memory_order_acquire));
  w.Key("shards");
  w.BeginArray();
  for (const std::unique_ptr<Backend>& backend : backends_) {
    w.BeginObject();
    w.Key("name");
    w.String(backend->config.name);
    w.Key("host");
    w.String(backend->config.host);
    w.Key("port");
    w.Int(backend->config.port);
    w.Key("up");
    w.Bool(!health_->IsDown(backend->config.name));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Release();
}

RouterCounters Router::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

std::string Router::Handle(const std::string& request_payload,
                           serve::RequestInfo* info) {
  ET_TRACE_SCOPE("cluster.route");
  Result<serve::Request> parsed = serve::ParseRequest(request_payload);
  if (!parsed.ok()) {
    if (info != nullptr) info->ok = false;
    return serve::ErrorResponse(0, parsed.status());
  }
  const serve::Request& request = *parsed;
  if (info != nullptr) info->method = request.method;

  auto fail = [&](const Status& st) {
    if (info != nullptr) info->ok = false;
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      if (st.code() == StatusCode::kUnavailable) {
        ++counters_.unavailable;
      } else if (st.code() == StatusCode::kIOError) {
        ++counters_.outcome_unknown;
      }
    }
    if (st.code() == StatusCode::kUnavailable) {
      ET_COUNTER_INC("cluster.unavailable");
      return serve::ErrorResponse(request.id, st, options_.retry_after_ms);
    }
    if (st.code() == StatusCode::kIOError) {
      ET_COUNTER_INC("cluster.outcome_unknown");
    }
    return serve::ErrorResponse(request.id, st);
  };

  if (request.method == "server.ping") {
    size_t up = 0;
    for (const std::unique_ptr<Backend>& backend : backends_) {
      if (!health_->IsDown(backend->config.name)) ++up;
    }
    if (info != nullptr) info->ok = true;
    return serve::OkResponse(
        request.id, "{\"pong\":true,\"router\":true,\"shards\":" +
                        std::to_string(backends_.size()) +
                        ",\"shards_up\":" + std::to_string(up) + "}");
  }
  if (request.method == "stats.scrape") {
    if (info != nullptr) info->ok = true;
    return serve::OkResponse(request.id, StatsJson());
  }
  if (request.method == "admin.drain") {
    BeginDrain();
    if (info != nullptr) info->ok = true;
    return serve::OkResponse(request.id, "{\"draining\":true}");
  }

  const bool mutating = request.method != "session.get";
  if (draining_.load(std::memory_order_acquire) && mutating) {
    return fail(Status::Unavailable("router is draining"));
  }

  if (request.method == "admin.migrate") {
    Result<std::string> result = HandleMigrate(request);
    if (!result.ok()) return fail(result.status());
    if (info != nullptr) info->ok = true;
    return serve::OkResponse(request.id, *result);
  }

  std::string response_payload;
  Result<std::string> session_id =
      request.method == "session.create"
          ? HandleCreate(request, &response_payload)
          : (request.method.rfind("session.", 0) == 0
                 ? HandleForward(request, request_payload, &response_payload)
                 : Result<std::string>(Status::NotFound("unknown method: " +
                                                        request.method)));
  if (info != nullptr && session_id.ok()) info->session_id = *session_id;
  if (!session_id.ok()) return fail(session_id.status());

  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.forwarded;
  }
  ET_COUNTER_INC("cluster.requests.forwarded");
  if (info != nullptr) {
    Result<serve::Response> response = serve::ParseResponse(response_payload);
    info->ok = response.ok() && response->ok;
  }
  return response_payload;
}

}  // namespace cluster
}  // namespace et
