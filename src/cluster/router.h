// Session router: N et_serve shards behind one wire endpoint.
//
// The router implements serve::RequestHandler, so tools/et_router
// reuses the whole poll front end from serve/server.cpp — framing,
// admission budget, request ids, latency histograms, slow log — and
// this class only decides *where* each frame goes:
//
//   server.ping / stats.scrape / admin.drain   answered locally
//   admin.migrate                              orchestrated locally
//   session.create                             id minted here, placed
//                                              on the consistent-hash
//                                              ring, forwarded with
//                                              params.session_id set
//   session.*                                  pinned shard (or ring)
//
// Forwarded frames travel over per-shard pools of blocking
// connections, one request per checkout, so responses never interleave
// and the backend's reply (which echoes the client's request id) is
// passed back byte-verbatim.
//
// Error mapping preserves the exactly-once discipline of serve/client:
// a request that provably never reached a shard (shard marked down,
// dial failed, zero bytes written — the backend only dispatches
// *complete* frames) is answered kUnavailable + retry_after_ms, which
// clients blindly retry; a transport failure after bytes left
// (send partial, recv error/EOF) is answered `io_error` with an
// "outcome unknown:" message, which clients resolve by resyncing via
// the read-only session.get, never by resending blindly.
//
// Failover: the health checker (active stats.scrape probes + forward
// -path failure reports) declares a shard down after K consecutive
// failures; the router removes it from the ring, picks the ring
// successor of the dead shard deterministically, and asks it to
// `admin.adopt` the dead shard's journal directory (PR-8 replay path;
// requires a shared filesystem). Recovered sessions are repinned to
// the adopter; the dead shard's other ring range serves new sessions
// on surviving shards immediately.

#ifndef ET_CLUSTER_ROUTER_H_
#define ET_CLUSTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/health.h"
#include "cluster/ring.h"
#include "common/clock.h"
#include "common/result.h"
#include "serve/session.h"
#include "serve/transport.h"

namespace et {
namespace cluster {

struct ShardConfig {
  /// Ring identity; must be unique and stable across router restarts.
  std::string name;
  std::string host = "127.0.0.1";
  int port = 0;
  /// The shard's --journal-dir as visible from this process; empty
  /// disables failover adoption of this shard's sessions.
  std::string journal_dir;
};

struct RouterOptions {
  std::vector<ShardConfig> shards;
  int virtual_nodes = HashRing::kDefaultVirtualNodes;
  /// Bounded in-flight budget of the router front end.
  size_t max_inflight = 128;
  double retry_after_ms = 25.0;
  /// Idle connections kept pooled per shard.
  size_t pool_size = 8;
  int connect_timeout_ms = 1000;
  /// Per-call send/recv deadline on a backend connection.
  int call_timeout_ms = 30000;
  /// Deadline of one health probe round trip.
  int probe_timeout_ms = 500;
  HealthOptions health;
  /// Adopt a dead shard's journals onto its ring successor.
  bool enable_failover = true;
  /// Prefix of router-minted session ids ("c-<n>"). Distinct from the
  /// shards' own "s-<n>" namespace so direct-to-shard sessions can
  /// never collide with routed ones.
  std::string id_prefix = "c-";
  /// Wire and time seams; null means RealTransport() / RealClock().
  serve::Transport* transport = nullptr;
  Clock* clock = nullptr;
  /// When false, Start() neither launches the health-probe thread nor
  /// grows the global thread pool — the caller drives probing
  /// explicitly via health().ProbeOnce(). The deterministic simulation
  /// harness runs the router this way, single-threaded.
  bool background = true;
};

/// Monotonic counters mirrored into the obs registry (cluster.*).
struct RouterCounters {
  uint64_t forwarded = 0;
  uint64_t unavailable = 0;
  uint64_t outcome_unknown = 0;
  uint64_t shard_down = 0;
  uint64_t failovers = 0;
  uint64_t sessions_failed_over = 0;
  uint64_t migrations = 0;
};

class Router : public serve::RequestHandler {
 public:
  /// Validates the shard set, builds the ring, starts health probing.
  static Result<std::unique_ptr<Router>> Start(const RouterOptions& options);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // serve::RequestHandler
  bool TryBeginRequest() override;
  void EndRequest() override;
  double retry_after_ms() const override { return options_.retry_after_ms; }
  bool draining() const override {
    return draining_.load(std::memory_order_acquire);
  }
  std::string Handle(const std::string& request_payload,
                     serve::RequestInfo* info) override;

  /// Stops accepting mutating work (create/label/restore/close/
  /// migrate); reads keep flowing so clients can resync. Idempotent.
  void BeginDrain();

  /// Stops health probing (and with it, failover). Destruction calls
  /// this too.
  void Stop();

  /// Where `session_id` is (or would be) served: its pin, else its
  /// ring placement. Empty when no shard is healthy.
  std::string ShardForSession(const std::string& session_id);

  HealthChecker& health() { return *health_; }
  RouterCounters counters() const;
  size_t InflightRequests() const {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  struct Backend;
  struct Route {
    std::string shard;
    int inflight = 0;
    bool migrating = false;
  };

  explicit Router(const RouterOptions& options);

  Backend* FindBackend(const std::string& shard);

  /// One request/response round trip against a shard, pooled
  /// connection or fresh dial. kUnavailable = provably not applied;
  /// kIOError "outcome unknown:" = may have been applied.
  /// `expect_id` is the request's own id; on the wire the frame is
  /// renumbered from the router-wide backend id counter (client id
  /// counters collide across connections), responses are matched on
  /// that unique id — strays (late answers, duplicates left on a
  /// pooled connection) are skipped — and the matched response gets
  /// `expect_id` spliced back before it is returned.
  Status CallShard(const std::string& shard, const std::string& request,
                   uint64_t expect_id, std::string* response);

  /// Health probe: fresh connection, stats.scrape, short deadline.
  /// Bypasses the pool and the down check.
  Status ProbeShard(const std::string& shard);

  /// Failover: removes the shard from the ring, asks its ring
  /// successor to adopt the dead shard's journals, and repins the
  /// sessions the adopt response lists. Adoption moves journals
  /// before the response travels back, so a lost response is
  /// recovered by retrying the adopt itself: the adopter's cumulative
  /// receipt re-reports every id previously moved from that directory
  /// even though the retry scans an empty dir.
  void OnShardDown(const std::string& shard);
  void OnShardUp(const std::string& shard);
  void ClearPool(const std::string& shard);

  /// Places `id` on the ring of healthy shards.
  std::string RingPlace(const std::string& id);

  /// Pins (or looks up) the route of `id` and takes an in-flight ref.
  Result<std::string> AcquireRoute(const std::string& id);
  void ReleaseRoute(const std::string& id);

  Result<std::string> HandleCreate(serve::Request request,
                                   std::string* response_payload);
  Result<std::string> HandleForward(const serve::Request& request,
                                    const std::string& payload,
                                    std::string* response_payload);
  Result<std::string> HandleMigrate(const serve::Request& request);
  std::string StatsJson() const;

  RouterOptions options_;
  serve::Transport* transport_;
  Clock* clock_;
  std::vector<std::unique_ptr<Backend>> backends_;
  std::unique_ptr<HealthChecker> health_;

  mutable std::mutex ring_mu_;
  HashRing ring_;

  mutable std::mutex routes_mu_;
  std::condition_variable routes_cv_;
  std::unordered_map<std::string, Route> routes_;
  /// Fencing debt, under routes_mu_: sessions repinned away from a
  /// shard while it was down. A shard declared down on probe failures
  /// may in truth be alive (partition, fault burst) and still hold
  /// those sessions live in memory at a stale round; before the shard
  /// rejoins the ring, OnShardUp sends it admin.evict for each so the
  /// stale copies can never serve again.
  std::unordered_map<std::string, std::vector<std::string>> fenced_;
  /// Shards whose journals OnShardDown is still adopting away, and
  /// shards whose up-transition arrived inside that window. Probe
  /// callbacks are reentrant (the adopt loop advances the clock, which
  /// fires probe timers), so a flapping shard can report healthy while
  /// its adoption is mid-retry; re-admitting it then would put a shard
  /// full of about-to-be-stale copies back in the ring before the
  /// fencing debt for them exists. The rejoin is parked in
  /// deferred_up_ and replayed when the adoption settles. Both under
  /// routes_mu_.
  std::unordered_set<std::string> adopting_;
  std::unordered_set<std::string> deferred_up_;

  std::atomic<uint64_t> next_session_{1};
  /// Router-wide id namespace for frames sent to shards: pooled
  /// backend connections are shared across clients whose own request
  /// ids collide, so CallShard renumbers each forwarded frame from
  /// this counter and restores the client's id on the response.
  std::atomic<uint64_t> next_backend_id_{1};
  std::atomic<size_t> inflight_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  mutable std::mutex counters_mu_;
  RouterCounters counters_;
};

}  // namespace cluster
}  // namespace et

#endif  // ET_CLUSTER_ROUTER_H_
