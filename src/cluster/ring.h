// Consistent-hash ring: session-id → shard placement shared by the
// router, the health checker, and the direct-to-shard tools.
//
// Each shard contributes `virtual_nodes` points on a 64-bit ring,
// positioned by a keyed FNV-1a hash of "<shard>#<replica>"; a key is
// owned by the first shard point at or clockwise after Hash(key).
// Virtual nodes smooth placement (at 1k points per shard the busiest
// shard carries within ~20% of the mean — tests/cluster/ring_test
// asserts this), and membership changes are minimally disruptive: when
// one of N shards joins or leaves, only the ~1/N of keys adjacent to
// its points move, everything else keeps its owner. That property is
// what lets the router repin only the dead shard's sessions on
// failover instead of reshuffling the world.
//
// Placement is a pure function of (membership set, virtual_nodes) —
// insertion order does not matter, so a router and an offline tool
// configured with the same shard names agree on every key.

#ifndef ET_CLUSTER_RING_H_
#define ET_CLUSTER_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace et {
namespace cluster {

/// Stable 64-bit hash used for ring positions and key placement.
/// FNV-1a with a splitmix64 finalizer: FNV alone clusters short
/// sequential ids ("c-1", "c-2", ...) into adjacent ring arcs; the
/// finalizer spreads them uniformly.
uint64_t RingHash(std::string_view s);

class HashRing {
 public:
  static constexpr int kDefaultVirtualNodes = 128;

  explicit HashRing(int virtual_nodes = kDefaultVirtualNodes)
      : virtual_nodes_(virtual_nodes < 1 ? 1 : virtual_nodes) {}

  /// Adds a shard's virtual nodes. Adding a present shard is a no-op.
  void AddShard(const std::string& name);

  /// Removes a shard's virtual nodes. Absent shard is a no-op.
  void RemoveShard(const std::string& name);

  bool HasShard(std::string_view name) const;

  /// Shard owning `key`; empty string when the ring is empty.
  std::string ShardFor(std::string_view key) const;

  /// The shard that would own `key` if `excluding` were not a member —
  /// i.e. where the dead shard's range lands. Used by failover to pick
  /// the adopting shard deterministically; empty when no other shard
  /// exists.
  std::string ShardForExcluding(std::string_view key,
                                std::string_view excluding) const;

  /// Member names, sorted.
  std::vector<std::string> Shards() const;

  size_t shard_count() const { return shards_.size(); }
  int virtual_nodes() const { return virtual_nodes_; }

 private:
  int virtual_nodes_;
  std::set<std::string> shards_;
  /// position → shard. Collisions (astronomically rare at 64 bits)
  /// resolve to the lexicographically smaller shard so placement stays
  /// independent of insertion order.
  std::map<uint64_t, std::string> points_;
};

}  // namespace cluster
}  // namespace et

#endif  // ET_CLUSTER_RING_H_
