#include "cluster/health.h"

#include <chrono>

#include "obs/metrics.h"

namespace et {
namespace cluster {

HealthChecker::HealthChecker(
    HealthOptions options, std::vector<std::string> shards,
    std::function<Status(const std::string&)> probe)
    : options_(options), probe_(std::move(probe)) {
  if (options_.down_after < 1) options_.down_after = 1;
  for (const std::string& shard : shards) states_[shard];
}

HealthChecker::~HealthChecker() { Stop(); }

void HealthChecker::SetOnDown(std::function<void(const std::string&)> cb) {
  on_down_ = std::move(cb);
}

void HealthChecker::SetOnUp(std::function<void(const std::string&)> cb) {
  on_up_ = std::move(cb);
}

void HealthChecker::Start() {
  if (prober_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = false;
  }
  prober_ = std::thread([this] { ProbeLoop(); });
}

void HealthChecker::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

HealthChecker::Flip HealthChecker::Observe(const std::string& shard,
                                           bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(shard);
  if (it == states_.end()) return Flip::kNone;
  ShardState& state = it->second;
  if (ok) {
    state.consecutive_failures = 0;
    if (!state.down) return Flip::kNone;
    state.down = false;
    return Flip::kUp;
  }
  ++state.consecutive_failures;
  if (state.down || state.consecutive_failures < options_.down_after) {
    return Flip::kNone;
  }
  state.down = true;
  ++down_transitions_;
  return Flip::kDown;
}

void HealthChecker::Fire(Flip flip, const std::string& shard) {
  if (flip == Flip::kNone) return;
  // One transition callback at a time: failover orchestration in
  // on_down must not race a concurrent on_up for the same shard.
  std::lock_guard<std::recursive_mutex> lock(transition_mu_);
  if (flip == Flip::kDown) {
    ET_COUNTER_INC("cluster.shard.down");
    if (on_down_) on_down_(shard);
  } else {
    ET_COUNTER_INC("cluster.shard.up");
    if (on_up_) on_up_(shard);
  }
}

void HealthChecker::RecordFailure(const std::string& shard) {
  Fire(Observe(shard, false), shard);
}

void HealthChecker::RecordSuccess(const std::string& shard) {
  Fire(Observe(shard, true), shard);
}

bool HealthChecker::IsDown(const std::string& shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(shard);
  return it != states_.end() && it->second.down;
}

std::vector<std::string> HealthChecker::DownShards() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> down;
  for (const auto& [shard, state] : states_) {
    if (state.down) down.push_back(shard);
  }
  return down;
}

uint64_t HealthChecker::down_transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return down_transitions_;
}

void HealthChecker::ProbeOnce() {
  std::vector<std::string> shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards.reserve(states_.size());
    for (const auto& [shard, state] : states_) shards.push_back(shard);
  }
  for (const std::string& shard : shards) {
    const Status st = probe_ ? probe_(shard) : Status::OK();
    ET_COUNTER_INC("cluster.health.probes");
    if (!st.ok()) ET_COUNTER_INC("cluster.health.probe_failures");
    Fire(Observe(shard, st.ok()), shard);
  }
}

void HealthChecker::ProbeLoop() {
  const auto period =
      std::chrono::milliseconds(options_.probe_interval_ms == 0
                                    ? 1
                                    : options_.probe_interval_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      stop_cv_.wait_for(lock, period, [this] { return stopping_; });
      if (stopping_) return;
    }
    ProbeOnce();
  }
}

}  // namespace cluster
}  // namespace et
