// Human-learning models (Section 3 of the paper).
//
// Each model plays two roles:
//  * as a *simulated annotator* — the human in the replayed user study
//    (the paper's 20 participants; DESIGN.md §4 documents the
//    substitution);
//  * as a *predictor* of annotator behaviour — the thing Figure 2
//    scores: replay the samples a participant saw and rank FDs by how
//    likely the participant is to declare them.
//
// Implemented models:
//   Fictitious Play / Bayesian    — Beta-per-FD belief, conjugate
//                                   updates from observed compliance.
//   Hypothesis Testing            — keep a single hypothesis; reject it
//                                   when it explains too little of the
//                                   recent window; adopt the best FD on
//                                   that window.
//   Model-free (reinforcement)    — no belief about the data; propensity
//                                   per FD reinforced by realized
//                                   explanatory payoff (the class §3
//                                   argues does not fit trainers).

#ifndef ET_HUMAN_ANNOTATOR_H_
#define ET_HUMAN_ANNOTATOR_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "belief/belief_model.h"
#include "belief/update.h"
#include "common/rng.h"

namespace et {

/// Common interface of simulated annotators and behaviour predictors.
class AnnotatorModel {
 public:
  virtual ~AnnotatorModel() = default;

  virtual std::string name() const = 0;

  /// Prediction step: incorporate one presented sample.
  virtual void Observe(const Relation& rel,
                       const std::vector<RowPair>& pairs) = 0;

  /// The hypothesis (space index) the annotator would declare now.
  /// May be stochastic for noisy models; stable between Observe calls.
  virtual size_t CurrentHypothesis() const = 0;

  /// Ranked top-k hypotheses by the model's preference.
  virtual std::vector<size_t> TopK(size_t k) const = 0;

  /// Response step: label the presented pairs under the *current*
  /// declared hypothesis (violating pair -> both tuples dirty).
  std::vector<LabeledPair> Label(const Relation& rel,
                                 const std::vector<RowPair>& pairs) const;

  const HypothesisSpace& space() const { return *space_; }

 protected:
  explicit AnnotatorModel(std::shared_ptr<const HypothesisSpace> space)
      : space_(std::move(space)) {}

  std::shared_ptr<const HypothesisSpace> space_;
};

/// Fictitious Play / Bayesian annotator.
struct BayesianAnnotatorOptions {
  /// Evidence weight per observed pair (inertia: < 1 learns slowly).
  double learning_weight = 1.0;
  /// Softmax temperature over confidences when declaring a hypothesis;
  /// 0 = deterministic argmax.
  double decision_noise = 0.0;
  /// Probability per Observe of a non-monotone "regression": the
  /// declared hypothesis is temporarily drawn from the top
  /// `regression_pool` instead of the top 1 (the behaviour the paper
  /// reports in scenario 2).
  double regression_prob = 0.0;
  /// Size of the pool regressions draw from.
  size_t regression_pool = 5;
};

class BayesianAnnotator final : public AnnotatorModel {
 public:
  BayesianAnnotator(BeliefModel prior,
                    const BayesianAnnotatorOptions& options, uint64_t seed);

  std::string name() const override { return "Bayesian(FP)"; }
  void Observe(const Relation& rel,
               const std::vector<RowPair>& pairs) override;
  size_t CurrentHypothesis() const override { return declared_; }
  std::vector<size_t> TopK(size_t k) const override;

  const BeliefModel& belief() const { return belief_; }

 private:
  void Redeclare();

  BeliefModel belief_;
  BayesianAnnotatorOptions options_;
  Rng rng_;
  size_t declared_ = 0;
};

/// Hypothesis-testing annotator.
struct HypothesisTestingOptions {
  /// Reject the current hypothesis when the fraction of applicable
  /// window pairs it fails to explain exceeds this tolerance.
  double tolerance = 0.2;
  /// Test every `frequency` observations (paper: every interaction).
  size_t frequency = 1;
  /// Number of most recent interactions in the evaluation window
  /// (paper: the preceding interaction performed best).
  size_t window = 1;
};

class HypothesisTestingAnnotator final : public AnnotatorModel {
 public:
  HypothesisTestingAnnotator(std::shared_ptr<const HypothesisSpace> space,
                             size_t initial_hypothesis,
                             const HypothesisTestingOptions& options,
                             uint64_t seed);

  std::string name() const override { return "HypothesisTesting"; }
  void Observe(const Relation& rel,
               const std::vector<RowPair>& pairs) override;
  size_t CurrentHypothesis() const override { return current_; }
  std::vector<size_t> TopK(size_t k) const override;

 private:
  /// Fraction of window pairs applicable to FD idx that violate it;
  /// 0 when none apply.
  double ViolationRate(size_t idx) const;

  HypothesisTestingOptions options_;
  Rng rng_;
  size_t current_;
  size_t observe_count_ = 0;
  /// Recent interactions: each is the list of (pair, relation snapshot
  /// is shared so only pairs stored).
  std::deque<std::vector<RowPair>> window_;
  const Relation* last_rel_ = nullptr;
};

/// Model-free (reinforcement) annotator.
struct ModelFreeOptions {
  double learning_rate = 0.3;
  /// Softmax temperature for hypothesis choice.
  double temperature = 0.1;
};

class ModelFreeAnnotator final : public AnnotatorModel {
 public:
  ModelFreeAnnotator(std::shared_ptr<const HypothesisSpace> space,
                     const ModelFreeOptions& options, uint64_t seed);

  std::string name() const override { return "ModelFree"; }
  void Observe(const Relation& rel,
               const std::vector<RowPair>& pairs) override;
  size_t CurrentHypothesis() const override { return current_; }
  std::vector<size_t> TopK(size_t k) const override;

 private:
  ModelFreeOptions options_;
  Rng rng_;
  std::vector<double> propensity_;
  size_t current_ = 0;
};

}  // namespace et

#endif  // ET_HUMAN_ANNOTATOR_H_
