#include "human/study.h"

#include <cmath>

#include "belief/priors.h"
#include "core/candidates.h"
#include "metrics/fd_f1.h"
#include "metrics/mrr.h"
#include "robustness/fault.h"

namespace et {

std::vector<ParticipantProfile> DefaultCohort(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ParticipantProfile> cohort;
  cohort.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ParticipantProfile p;
    p.learning_weight = rng.NextDouble(0.4, 1.2);
    p.decision_noise = rng.NextBernoulli(0.3) ? rng.NextDouble(0.02, 0.08)
                                              : 0.0;
    p.regression_prob = rng.NextDouble(0.05, 0.25);
    const double prior_draw = rng.NextDouble();
    p.prior_kind = prior_draw < 0.5 ? 0 : (prior_draw < 0.8 ? 1 : 2);
    cohort.push_back(p);
  }
  return cohort;
}

Result<std::unique_ptr<AnnotatorModel>> MakeSimulatedParticipant(
    const ScenarioInstance& instance, const ParticipantProfile& profile,
    uint64_t seed) {
  Rng rng(seed);
  BeliefModel prior;
  switch (profile.prior_kind) {
    case 0: {
      // Believes one of the scenario's alternative FDs.
      const FD& alt = instance.alternatives[rng.NextUint64(
          instance.alternatives.size())];
      ET_ASSIGN_OR_RETURN(prior, UserPrior(instance.space, alt));
      break;
    }
    case 1: {
      // "Not sure": uniform prior (the study falls back to uniform).
      ET_ASSIGN_OR_RETURN(prior, UniformPrior(instance.space, 0.5, 4.0));
      break;
    }
    default: {
      const FD& tgt =
          instance.targets[rng.NextUint64(instance.targets.size())];
      ET_ASSIGN_OR_RETURN(prior, UserPrior(instance.space, tgt));
      break;
    }
  }
  BayesianAnnotatorOptions options;
  options.learning_weight = profile.learning_weight;
  options.decision_noise = profile.decision_noise;
  options.regression_prob = profile.regression_prob;
  options.regression_pool = profile.regression_pool;
  return std::unique_ptr<AnnotatorModel>(
      new BayesianAnnotator(std::move(prior), options, rng.NextUint64()));
}

Result<StudySession> RunStudySession(const ScenarioInstance& instance,
                                     AnnotatorModel& participant,
                                     int participant_id,
                                     const StudyOptions& options,
                                     Rng& rng) {
  if (options.min_rounds == 0 || options.max_rounds < options.min_rounds) {
    return Status::InvalidArgument("invalid round bounds");
  }
  StudySession session;
  session.scenario_id = instance.scenario.id;
  session.participant = participant_id;
  session.prior_hypothesis = participant.CurrentHypothesis();

  // The study UI shows random samples; build an LHS-aware pool so pairs
  // actually exercise the scenario's FDs, then sample uniformly.
  CandidateOptions pool_options;
  pool_options.random_pairs = 100;
  ET_ASSIGN_OR_RETURN(
      std::vector<RowPair> pool,
      BuildCandidatePairs(instance.rel, *instance.space, pool_options,
                          rng));

  const size_t rounds =
      options.min_rounds +
      rng.NextUint64(options.max_rounds - options.min_rounds + 1);
  size_t cursor = 0;
  rng.Shuffle(pool);
  for (size_t t = 0; t < rounds; ++t) {
    StudyRound round;
    for (size_t i = 0; i < options.pairs_per_round && cursor < pool.size();
         ++i) {
      round.shown.push_back(pool[cursor++]);
    }
    if (round.shown.empty()) break;  // pool exhausted
    // A fired fault models a participant dropping out mid-session or
    // returning a garbage (timed-out) answer sheet.
    ET_FAULT_POINT("annotator.respond");
    participant.Observe(instance.rel, round.shown);
    round.declared = participant.CurrentHypothesis();
    round.labels = participant.Label(instance.rel, round.shown);
    session.rounds.push_back(std::move(round));
  }
  return session;
}

Result<std::vector<double>> PredictorRRSeries(
    const ScenarioInstance& instance, const StudySession& session,
    AnnotatorModel& predictor, size_t k, bool plus,
    const std::vector<double>& fd_f1) {
  if (plus && fd_f1.size() != instance.space->size()) {
    return Status::InvalidArgument(
        "fd_f1 must be parallel to the hypothesis space");
  }
  std::vector<double> rrs;
  rrs.reserve(session.rounds.size());
  for (const StudyRound& round : session.rounds) {
    predictor.Observe(instance.rel, round.shown);
    const std::vector<size_t> ranked = predictor.TopK(k);
    const double rr =
        plus ? ReciprocalRankPlus(*instance.space, ranked, round.declared,
                                  fd_f1)
             : ReciprocalRank(ranked, round.declared);
    rrs.push_back(rr);
  }
  return rrs;
}

Result<std::vector<double>> SpaceF1Table(const ScenarioInstance& instance) {
  const std::vector<bool> clean = instance.clean_rows();
  std::vector<double> out;
  out.reserve(instance.space->size());
  for (const FD& fd : instance.space->fds()) {
    ET_ASSIGN_OR_RETURN(PRF1 score, FdCleanF1(instance.rel, fd, clean));
    out.push_back(score.f1);
  }
  return out;
}

Result<double> SessionF1Change(const ScenarioInstance& instance,
                               const StudySession& session) {
  if (session.rounds.size() < 2) return 0.0;
  const std::vector<bool> clean = instance.clean_rows();
  std::vector<double> f1s;
  f1s.reserve(session.rounds.size());
  for (const StudyRound& round : session.rounds) {
    ET_ASSIGN_OR_RETURN(
        PRF1 score,
        FdCleanF1(instance.rel, instance.space->fd(round.declared), clean));
    f1s.push_back(score.f1);
  }
  double total = 0.0;
  for (size_t i = 1; i < f1s.size(); ++i) {
    total += std::fabs(f1s[i] - f1s[i - 1]);
  }
  return total / static_cast<double>(f1s.size() - 1);
}

size_t RoundsToTarget(const ScenarioInstance& instance,
                      const StudySession& session) {
  for (size_t t = 0; t < session.rounds.size(); ++t) {
    const FD& declared =
        instance.space->fd(session.rounds[t].declared);
    for (const FD& target : instance.targets) {
      if (declared == target) return t + 1;
    }
  }
  return 0;
}

}  // namespace et
