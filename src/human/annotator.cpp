#include "human/annotator.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/math.h"
#include "fd/g1.h"

namespace et {

std::vector<LabeledPair> AnnotatorModel::Label(
    const Relation& rel, const std::vector<RowPair>& pairs) const {
  const FD& hyp = space_->fd(CurrentHypothesis());
  std::vector<LabeledPair> out;
  out.reserve(pairs.size());
  for (const RowPair& p : pairs) {
    LabeledPair lp;
    lp.pair = p;
    const bool dirty =
        CheckPair(rel, hyp, p.first, p.second) == PairCompliance::kViolates;
    lp.first_dirty = dirty;
    lp.second_dirty = dirty;
    out.push_back(lp);
  }
  return out;
}

// ---------------------------------------------------------------------------
// BayesianAnnotator

BayesianAnnotator::BayesianAnnotator(
    BeliefModel prior, const BayesianAnnotatorOptions& options,
    uint64_t seed)
    : AnnotatorModel(prior.space_ptr()),
      belief_(std::move(prior)),
      options_(options),
      rng_(seed) {
  ET_CHECK(options_.learning_weight > 0.0);
  declared_ = belief_.Top1();
}

void BayesianAnnotator::Observe(const Relation& rel,
                                const std::vector<RowPair>& pairs) {
  UpdateFromObservation(&belief_, rel, pairs, options_.learning_weight);
  Redeclare();
}

void BayesianAnnotator::Redeclare() {
  if (options_.regression_prob > 0.0 &&
      rng_.NextBernoulli(options_.regression_prob)) {
    // Non-monotone slip: declare one of the current best instead of
    // the best.
    const std::vector<size_t> top = belief_.TopK(options_.regression_pool);
    declared_ = top[rng_.NextUint64(top.size())];
    return;
  }
  if (options_.decision_noise > 0.0) {
    const std::vector<double> probs =
        Softmax(belief_.Confidences(), options_.decision_noise);
    declared_ = rng_.NextDiscrete(probs);
    return;
  }
  declared_ = belief_.Top1();
}

std::vector<size_t> BayesianAnnotator::TopK(size_t k) const {
  return belief_.TopK(k);
}

// ---------------------------------------------------------------------------
// HypothesisTestingAnnotator

HypothesisTestingAnnotator::HypothesisTestingAnnotator(
    std::shared_ptr<const HypothesisSpace> space, size_t initial_hypothesis,
    const HypothesisTestingOptions& options, uint64_t seed)
    : AnnotatorModel(std::move(space)),
      options_(options),
      rng_(seed),
      current_(initial_hypothesis) {
  ET_CHECK(current_ < space_->size());
  ET_CHECK(options_.frequency >= 1);
  ET_CHECK(options_.window >= 1);
}

double HypothesisTestingAnnotator::ViolationRate(size_t idx) const {
  if (last_rel_ == nullptr) return 0.0;
  const FD& fd = space_->fd(idx);
  size_t applicable = 0;
  size_t violating = 0;
  for (const auto& interaction : window_) {
    for (const RowPair& p : interaction) {
      switch (CheckPair(*last_rel_, fd, p.first, p.second)) {
        case PairCompliance::kSatisfies:
          ++applicable;
          break;
        case PairCompliance::kViolates:
          ++applicable;
          ++violating;
          break;
        case PairCompliance::kInapplicable:
          break;
      }
    }
  }
  if (applicable == 0) return 0.0;
  return static_cast<double>(violating) / static_cast<double>(applicable);
}

void HypothesisTestingAnnotator::Observe(
    const Relation& rel, const std::vector<RowPair>& pairs) {
  last_rel_ = &rel;
  window_.push_back(pairs);
  while (window_.size() > options_.window) window_.pop_front();
  ++observe_count_;
  if (observe_count_ % options_.frequency != 0) return;

  if (ViolationRate(current_) <= options_.tolerance) return;  // keep it

  // Reject: adopt the hypothesis performing best on the window.
  // Deterministic tie-break by index keeps replays reproducible.
  double best_rate = ViolationRate(current_);
  size_t best = current_;
  for (size_t i = 0; i < space_->size(); ++i) {
    const double rate = ViolationRate(i);
    if (rate < best_rate) {
      best_rate = rate;
      best = i;
    }
  }
  current_ = best;
}

std::vector<size_t> HypothesisTestingAnnotator::TopK(size_t k) const {
  std::vector<size_t> idx(space_->size());
  std::iota(idx.begin(), idx.end(), 0);
  std::vector<double> rate(space_->size());
  for (size_t i = 0; i < space_->size(); ++i) rate[i] = ViolationRate(i);
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    // Current hypothesis first, then ascending violation rate.
    if ((a == current_) != (b == current_)) return a == current_;
    return rate[a] < rate[b];
  });
  idx.resize(std::min(k, idx.size()));
  return idx;
}

// ---------------------------------------------------------------------------
// ModelFreeAnnotator

ModelFreeAnnotator::ModelFreeAnnotator(
    std::shared_ptr<const HypothesisSpace> space,
    const ModelFreeOptions& options, uint64_t seed)
    : AnnotatorModel(std::move(space)), options_(options), rng_(seed) {
  ET_CHECK(options_.learning_rate > 0.0 && options_.learning_rate <= 1.0);
  ET_CHECK(options_.temperature > 0.0);
  propensity_.assign(space_->size(), 0.5);
  current_ = rng_.NextUint64(space_->size());
}

void ModelFreeAnnotator::Observe(const Relation& rel,
                                 const std::vector<RowPair>& pairs) {
  // Realized payoff of the *current* action only: the fraction of
  // applicable pairs the declared FD explains. Model-free learners do
  // not counterfactually evaluate unchosen hypotheses.
  const FD& fd = space_->fd(current_);
  size_t applicable = 0;
  size_t satisfied = 0;
  for (const RowPair& p : pairs) {
    switch (CheckPair(rel, fd, p.first, p.second)) {
      case PairCompliance::kSatisfies:
        ++applicable;
        ++satisfied;
        break;
      case PairCompliance::kViolates:
        ++applicable;
        break;
      case PairCompliance::kInapplicable:
        break;
    }
  }
  if (applicable > 0) {
    const double reward =
        static_cast<double>(satisfied) / static_cast<double>(applicable);
    propensity_[current_] +=
        options_.learning_rate * (reward - propensity_[current_]);
  }
  const std::vector<double> probs =
      Softmax(propensity_, options_.temperature);
  current_ = rng_.NextDiscrete(probs);
}

std::vector<size_t> ModelFreeAnnotator::TopK(size_t k) const {
  std::vector<size_t> idx(space_->size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    if ((a == current_) != (b == current_)) return a == current_;
    return propensity_[a] > propensity_[b];
  });
  idx.resize(std::min(k, idx.size()));
  return idx;
}

}  // namespace et
