// The user-study replay harness (App. A.2/A.3).
//
// A cohort of simulated participants interacts with each scenario:
// every round the interface shows a random sample (the study UI showed
// 10 random tuples; here 5 random pairs), the participant labels
// violations under their current hypothesis and declares the FD they
// believe most accurate. Predictors (the models of Section 3) then
// replay each session's sample stream and are scored by the MRR of the
// participant's declared FD in their top-5 (Figure 2), exactly and with
// subset/superset "+" credit; Table 3 reports the average f1-change of
// declared hypotheses between rounds.

#ifndef ET_HUMAN_STUDY_H_
#define ET_HUMAN_STUDY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "human/annotator.h"
#include "human/scenarios.h"

namespace et {

/// One interaction of one participant.
struct StudyRound {
  std::vector<RowPair> shown;
  /// Hypothesis-space index of the declared FD after seeing the sample.
  size_t declared = 0;
  std::vector<LabeledPair> labels;
};

/// One participant x scenario trace.
struct StudySession {
  int scenario_id = 0;
  int participant = 0;
  /// Hypothesis declared before any sample (the prior the study elicits).
  size_t prior_hypothesis = 0;
  std::vector<StudyRound> rounds;
};

/// Behavioural profile of one simulated participant.
struct ParticipantProfile {
  /// Evidence weight per observed pair (slow vs fast learner).
  double learning_weight = 1.0;
  /// Softmax temperature when declaring (0 = argmax).
  double decision_noise = 0.0;
  /// Probability of a non-monotone regression per round.
  double regression_prob = 0.0;
  /// Pool size regressions draw from (larger = wilder regressions).
  size_t regression_pool = 5;
  /// Prior: 0 = believes an alternative FD, 1 = unsure (uniform),
  /// 2 = already believes the target.
  int prior_kind = 0;
};

/// A heterogeneous cohort of `n` participants (deterministic in seed).
/// Mix: mostly alternative-believers, some unsure, a few
/// target-believers; learning speeds and noise vary.
std::vector<ParticipantProfile> DefaultCohort(size_t n, uint64_t seed);

/// Builds the simulated human for a profile on a scenario instance
/// (Bayesian learner per the paper's finding, configured by profile).
Result<std::unique_ptr<AnnotatorModel>> MakeSimulatedParticipant(
    const ScenarioInstance& instance, const ParticipantProfile& profile,
    uint64_t seed);

struct StudyOptions {
  /// Every participant interacts 9..15 rounds (App. A.2); rounds are
  /// drawn uniformly in this range per session.
  size_t min_rounds = 9;
  size_t max_rounds = 15;
  /// Pairs per shown sample (10 tuples = 5 pairs).
  size_t pairs_per_round = 5;
};

/// Runs one participant through one scenario instance.
Result<StudySession> RunStudySession(const ScenarioInstance& instance,
                                     AnnotatorModel& participant,
                                     int participant_id,
                                     const StudyOptions& options, Rng& rng);

/// A predictor factory: builds a fresh model to replay one session.
using PredictorFactory =
    std::function<Result<std::unique_ptr<AnnotatorModel>>(
        const ScenarioInstance&, const StudySession&, uint64_t seed)>;

/// Replays `session`'s sample stream through a fresh predictor and
/// returns the per-round reciprocal rank of the declared FD in the
/// predictor's top-k (k = 5 in the paper). When `plus` is set,
/// subset/superset matches earn discounted credit using `fd_f1` (per-FD
/// F1 against ground truth, parallel to the hypothesis space).
Result<std::vector<double>> PredictorRRSeries(
    const ScenarioInstance& instance, const StudySession& session,
    AnnotatorModel& predictor, size_t k, bool plus,
    const std::vector<double>& fd_f1);

/// Per-FD F1 of every hypothesis-space FD against the instance's
/// ground-truth clean rows (the "+"-metric discount table).
Result<std::vector<double>> SpaceF1Table(const ScenarioInstance& instance);

/// Table 3's statistic: mean absolute f1-change of the declared FD
/// between consecutive rounds of a session.
Result<double> SessionF1Change(const ScenarioInstance& instance,
                               const StudySession& session);

/// 1-based round at which the participant first declared one of the
/// scenario's target FDs, or 0 when they never did — the study design's
/// "time to pinpoint the target" (App. A.2 argues smaller violation
/// ratios make this faster).
size_t RoundsToTarget(const ScenarioInstance& instance,
                      const StudySession& session);

}  // namespace et

#endif  // ET_HUMAN_STUDY_H_
