// The five user-study scenarios of Table 2, as executable recipes:
// a scenario-specific schema/generator, the target FD(s) (the ones that
// hold with the fewest violations after injection), the alternative
// FD(s) a participant might plausibly believe, and the violation ratio
// m/n used by the error generator (1/3 for AIRPORT, 2/3 for OMDB).

#ifndef ET_HUMAN_SCENARIOS_H_
#define ET_HUMAN_SCENARIOS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/datasets.h"
#include "errgen/error_generator.h"
#include "fd/hypothesis_space.h"

namespace et {

/// Static description of one scenario (Table 2 row).
struct Scenario {
  int id = 0;
  std::string domain;  // "Airport" or "OMDB"
  DatasetSpec spec;
  /// Normalized target FDs, "A,B->C" strings over the spec's schema.
  std::vector<std::string> target_fds;
  /// Normalized alternative FDs.
  std::vector<std::string> alternative_fds;
  /// Violation ratio m/n: n violations in every alternative FD per m in
  /// each target FD.
  int ratio_m = 1;
  int ratio_n = 3;
};

/// All five Table 2 scenarios, in order.
std::vector<Scenario> UserStudyScenarios();

/// A scenario made concrete: generated data with injected violations,
/// ground-truth dirty rows, the hypothesis space, and resolved FDs.
struct ScenarioInstance {
  Scenario scenario;
  Relation rel;
  DirtyGroundTruth truth;
  std::shared_ptr<const HypothesisSpace> space;
  std::vector<FD> targets;
  std::vector<FD> alternatives;

  /// Index of the primary target FD in the space.
  size_t primary_target = 0;
  /// Per-row clean flags derived from the ground truth.
  std::vector<bool> clean_rows() const;
};

struct ScenarioInstanceOptions {
  size_t rows = 200;
  /// Violations injected per target FD; alternatives get
  /// ratio_n/ratio_m times as many.
  size_t target_violations = 25;
  /// Max total attributes (|LHS|+1) per hypothesis-space FD.
  int max_fd_attrs = 3;
};

/// Generates the data, injects violations at the scenario's ratio, and
/// enumerates the hypothesis space over the scenario schema.
Result<ScenarioInstance> InstantiateScenario(
    const Scenario& scenario, const ScenarioInstanceOptions& options,
    uint64_t seed);

}  // namespace et

#endif  // ET_HUMAN_SCENARIOS_H_
