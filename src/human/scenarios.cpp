#include "human/scenarios.h"

namespace et {
namespace {

using K = AttrSpec::Kind;

Scenario MakeScenario1() {
  // Target: (facilityname, type) -> manager.
  // Alternative: facilityname -> (type, manager).
  Scenario s;
  s.id = 1;
  s.domain = "Airport";
  s.spec.name = "airport_s1";
  s.spec.attrs = {
      {"facilityname", K::kFree, 60, {}, "fac", 0.0},
      // Approximate: a facility's type is mostly fixed, with exceptions
      // (mirrors the real data, and makes alternative-only scrambles
      // possible — rows whose (facilityname, type) combo is unique).
      {"type", K::kDerived, 4, {"facilityname"}, "ftype", 0.15},
      {"manager", K::kDerived, 40, {"facilityname", "type"}, "mgr", 0.0},
  };
  s.target_fds = {"facilityname,type->manager"};
  s.alternative_fds = {"facilityname->type", "facilityname->manager"};
  s.ratio_m = 1;
  s.ratio_n = 3;
  return s;
}

Scenario MakeScenario2() {
  // Target: sitenumber -> (facilityname, owner, manager).
  // Alternative: facilityname -> (sitenumber, owner, manager).
  Scenario s;
  s.id = 2;
  s.domain = "Airport";
  s.spec.name = "airport_s2";
  s.spec.attrs = {
      {"sitenumber", K::kFree, 90, {}, "site", 0.0},
      // Non-injective: several sites share a facility name (as in the
      // real airfield data), so facilityname classes span sites and
      // alternative-only violations exist for rows with a unique site.
      {"facilityname", K::kDerived, 40, {"sitenumber"}, "fac", 0.0},
      {"owner", K::kDerived, 30, {"facilityname"}, "own", 0.0},
      {"manager", K::kDerived, 40, {"facilityname"}, "mgr", 0.0},
  };
  s.target_fds = {"sitenumber->facilityname", "sitenumber->owner",
                  "sitenumber->manager"};
  s.alternative_fds = {"facilityname->owner", "facilityname->manager"};
  s.ratio_m = 1;
  s.ratio_n = 3;
  return s;
}

Scenario MakeScenario3() {
  // Target: manager -> owner.
  // Alternative: facilityname -> (owner, manager).
  Scenario s;
  s.id = 3;
  s.domain = "Airport";
  s.spec.name = "airport_s3";
  s.spec.attrs = {
      {"facilityname", K::kFree, 60, {}, "fac", 0.0},
      {"manager", K::kDerived, 30, {"facilityname"}, "mgr", 0.0},
      {"owner", K::kDerived, 20, {"manager"}, "own", 0.0},
  };
  s.target_fds = {"manager->owner"};
  s.alternative_fds = {"facilityname->owner", "facilityname->manager"};
  s.ratio_m = 1;
  s.ratio_n = 3;
  return s;
}

Scenario MakeScenario4() {
  // Target: (title, year) -> (type, genre).
  // Alternative: title -> (year, type, genre).
  Scenario s;
  s.id = 4;
  s.domain = "OMDB";
  s.spec.name = "omdb_s4";
  s.spec.attrs = {
      {"title", K::kFree, 60, {}, "movie", 0.0},
      // Approximate: remakes share a title across years, so some rows
      // have a unique (title, year) combination.
      {"year", K::kDerived, 30, {"title"}, "y", 0.2},
      {"type", K::kDerived, 3, {"title", "year"}, "type", 0.0},
      {"genre", K::kDerived, 12, {"title", "year"}, "genre", 0.0},
  };
  s.target_fds = {"title,year->type", "title,year->genre"};
  s.alternative_fds = {"title->year", "title->type", "title->genre"};
  s.ratio_m = 2;
  s.ratio_n = 3;
  return s;
}

Scenario MakeScenario5() {
  // Target: rating -> type.
  // Alternative: title -> (rating, type).
  Scenario s;
  s.id = 5;
  s.domain = "OMDB";
  s.spec.name = "omdb_s5";
  s.spec.attrs = {
      {"title", K::kFree, 60, {}, "movie", 0.0},
      // Approximate: re-releases get re-rated occasionally.
      {"rating", K::kDerived, 8, {"title"}, "rated", 0.15},
      {"type", K::kDerived, 3, {"rating"}, "type", 0.0},
  };
  s.target_fds = {"rating->type"};
  s.alternative_fds = {"title->rating", "title->type"};
  s.ratio_m = 2;
  s.ratio_n = 3;
  return s;
}

}  // namespace

std::vector<Scenario> UserStudyScenarios() {
  return {MakeScenario1(), MakeScenario2(), MakeScenario3(),
          MakeScenario4(), MakeScenario5()};
}

std::vector<bool> ScenarioInstance::clean_rows() const {
  std::vector<bool> clean(truth.dirty_rows.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    clean[i] = !truth.dirty_rows[i];
  }
  return clean;
}

Result<ScenarioInstance> InstantiateScenario(
    const Scenario& scenario, const ScenarioInstanceOptions& options,
    uint64_t seed) {
  ET_ASSIGN_OR_RETURN(Dataset data,
                      GenerateFromSpec(scenario.spec, options.rows, seed));
  ScenarioInstance inst;
  inst.scenario = scenario;
  inst.rel = std::move(data.rel);

  for (const std::string& text : scenario.target_fds) {
    ET_ASSIGN_OR_RETURN(FD fd, ParseFD(text, inst.rel.schema()));
    inst.targets.push_back(fd);
  }
  for (const std::string& text : scenario.alternative_fds) {
    ET_ASSIGN_OR_RETURN(FD fd, ParseFD(text, inst.rel.schema()));
    inst.alternatives.push_back(fd);
  }

  ErrorGenerator gen(&inst.rel, seed ^ 0xE55CA9E5u);
  ET_RETURN_NOT_OK(gen.InjectWithRatio(
      inst.targets, inst.alternatives, options.target_violations,
      scenario.ratio_m, scenario.ratio_n));
  inst.truth = gen.ground_truth();

  inst.space = std::make_shared<const HypothesisSpace>(
      HypothesisSpace::EnumerateAll(inst.rel.schema(),
                                    options.max_fd_attrs));
  ET_ASSIGN_OR_RETURN(inst.primary_target,
                      inst.space->IndexOf(inst.targets.front()));
  return inst;
}

}  // namespace et
