#include "exp/userstudy_experiment.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "belief/priors.h"
#include "common/math.h"
#include "common/thread_pool.h"
#include "exp/exp_checkpoint.h"
#include "metrics/mrr.h"
#include "obs/trace.h"
#include "robustness/checkpoint.h"
#include "robustness/fault.h"
#include "robustness/watchdog.h"

namespace et {
namespace {

/// Builds the Bayesian(FP) predictor for a session: prior seeded from
/// the participant's initially declared FD (the study elicits it), per
/// App. A.2's configuration.
Result<std::unique_ptr<AnnotatorModel>> MakeBayesianPredictor(
    const ScenarioInstance& instance, const StudySession& session,
    uint64_t seed) {
  ET_ASSIGN_OR_RETURN(
      BeliefModel prior,
      UserPrior(instance.space,
                instance.space->fd(session.prior_hypothesis)));
  BayesianAnnotatorOptions options;  // deterministic, weight 1
  return std::unique_ptr<AnnotatorModel>(
      new BayesianAnnotator(std::move(prior), options, seed));
}

Result<std::unique_ptr<AnnotatorModel>> MakeHTPredictor(
    const ScenarioInstance& instance, const StudySession& session,
    uint64_t seed) {
  HypothesisTestingOptions options;  // test every round on last sample
  return std::unique_ptr<AnnotatorModel>(new HypothesisTestingAnnotator(
      instance.space, session.prior_hypothesis, options, seed));
}

Result<std::unique_ptr<AnnotatorModel>> MakeModelFreePredictor(
    const ScenarioInstance& instance, const StudySession&, uint64_t seed) {
  return std::unique_ptr<AnnotatorModel>(
      new ModelFreeAnnotator(instance.space, ModelFreeOptions{}, seed));
}

struct PredictorSpec {
  std::string name;
  Result<std::unique_ptr<AnnotatorModel>> (*make)(const ScenarioInstance&,
                                                  const StudySession&,
                                                  uint64_t);
};

/// Canonical text form of every result-affecting config field (the
/// resilience knobs are excluded — they must not invalidate
/// checkpoints).
std::string CanonicalConfig(const UserStudyConfig& config) {
  std::string out = "userstudy-v1";
  auto num = [&out](const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "|%s=%.17g", key, v);
    out += buf;
  };
  num("participants", static_cast<double>(config.participants));
  num("min_rounds", static_cast<double>(config.study.min_rounds));
  num("max_rounds", static_cast<double>(config.study.max_rounds));
  num("pairs", static_cast<double>(config.study.pairs_per_round));
  num("rows", static_cast<double>(config.instance.rows));
  num("violations",
      static_cast<double>(config.instance.target_violations));
  num("max_attrs", config.instance.max_fd_attrs);
  out += "|seed=" + std::to_string(config.seed);
  num("top_k", static_cast<double>(config.top_k));
  num("s2_regression", config.scenario2_extra_regression);
  out += config.include_model_free ? "|mf" : "|nomf";
  return out;
}

}  // namespace

Result<UserStudyResult> RunUserStudy(const UserStudyConfig& config) {
  ET_TRACE_SCOPE("exp.userstudy.run");
  if (config.participants == 0) {
    return Status::InvalidArgument("need at least one participant");
  }
  std::vector<PredictorSpec> predictors = {
      {"Bayesian(FP)", &MakeBayesianPredictor},
      {"HypothesisTesting", &MakeHTPredictor},
  };
  if (config.include_model_free) {
    predictors.push_back({"ModelFree", &MakeModelFreePredictor});
  }

  UserStudyResult result;
  const std::vector<Scenario> scenarios = UserStudyScenarios();
  const std::vector<ParticipantProfile> cohort =
      DefaultCohort(config.participants, config.seed);

  std::string fingerprint;
  std::unique_ptr<CheckpointStore> store;
  if (!config.checkpoint_dir.empty()) {
    fingerprint = ConfigFingerprint(CanonicalConfig(config));
    store = std::make_unique<CheckpointStore>(config.checkpoint_dir,
                                              "study-" + fingerprint);
  }

  for (const Scenario& scenario : scenarios) {
    const std::string ckpt_name =
        "scenario-" + std::to_string(scenario.id);
    if (store != nullptr && config.resume) {
      Result<std::string> payload = store->Load(ckpt_name);
      if (payload.ok()) {
        ET_ASSIGN_OR_RETURN(
            UserStudyScenarioCheckpoint saved,
            DecodeUserStudyScenario(*payload, fingerprint));
        if (saved.scenario_id != scenario.id) {
          return Status::InvalidArgument(
              "checkpoint " + ckpt_name + " holds scenario " +
              std::to_string(saved.scenario_id));
        }
        result.table3.push_back({saved.scenario_id, saved.avg_f1_change});
        for (const auto& s : saved.scores) {
          result.fig2.push_back({saved.scenario_id, s.model, s.mrr,
                                 s.mrr_plus,
                                 static_cast<size_t>(s.sessions)});
        }
        ET_COUNTER_INC("exp.userstudy.scenarios_resumed");
        continue;
      }
      if (!payload.status().IsNotFound()) return payload.status();
    }

    ET_FAULT_POINT("exp.scenario");
    // Cooperative deadline over the whole scenario; polled at the top
    // of every per-participant and per-predictor unit of work.
    Watchdog watchdog(config.scenario_deadline_ms);
    const std::string watched =
        "user-study scenario " + std::to_string(scenario.id);

    const uint64_t scenario_seed =
        config.seed ^ (0x5CE9A210ULL * static_cast<uint64_t>(scenario.id));
    ET_ASSIGN_OR_RETURN(
        ScenarioInstance instance,
        InstantiateScenario(scenario, config.instance, scenario_seed));
    ET_ASSIGN_OR_RETURN(std::vector<double> fd_f1,
                        SpaceF1Table(instance));

    // Run every participant, collecting sessions and Table 3 stats.
    // Participants are seeded independently, so sessions run in
    // parallel into per-participant slots; the merge below walks them
    // in participant order, keeping output identical to a serial run.
    using ParticipantOutcome = std::pair<StudySession, double>;
    std::vector<Result<ParticipantOutcome>> runs(
        cohort.size(),
        Result<ParticipantOutcome>(Status::Internal("not run")));
    ET_RETURN_NOT_OK(
        TryParallelFor(cohort.size(), [&](size_t begin, size_t end) {
      for (size_t p = begin; p < end; ++p) {
        runs[p] = [&, p]() -> Result<ParticipantOutcome> {
          ET_RETURN_NOT_OK(watchdog.Check(watched));
          ParticipantProfile profile = cohort[p];
          if (scenario.id == 2) {
            // Scenario 2 was markedly harder: more regressions, noisier
            // declarations (App. A.3).
            profile.regression_prob += config.scenario2_extra_regression;
            profile.regression_pool = 12;
            profile.decision_noise =
                std::max(profile.decision_noise, 0.05);
          }
          const uint64_t part_seed = scenario_seed + 7919ULL * (p + 1);
          ET_ASSIGN_OR_RETURN(
              std::unique_ptr<AnnotatorModel> participant,
              MakeSimulatedParticipant(instance, profile, part_seed));
          Rng session_rng(part_seed ^ 0xFACEULL);
          ET_ASSIGN_OR_RETURN(
              StudySession session,
              RunStudySession(instance, *participant,
                              static_cast<int>(p), config.study,
                              session_rng));
          ET_ASSIGN_OR_RETURN(double change,
                              SessionF1Change(instance, session));
          return ParticipantOutcome(std::move(session), change);
        }();
      }
    }));
    std::vector<StudySession> sessions;
    std::vector<double> f1_changes;
    for (size_t p = 0; p < cohort.size(); ++p) {
      ET_RETURN_NOT_OK(runs[p].status());
      f1_changes.push_back(runs[p]->second);
      sessions.push_back(std::move(runs[p]->first));
    }
    result.table3.push_back({scenario.id, Mean(f1_changes)});

    // Score every predictor over all sessions. Each session's RR
    // series lands in its own slot; concatenation happens serially in
    // session order so the MRR reduction order never changes.
    for (const PredictorSpec& spec : predictors) {
      using SeriesPair =
          std::pair<std::vector<double>, std::vector<double>>;
      std::vector<Result<SeriesPair>> scored(
          sessions.size(),
          Result<SeriesPair>(Status::Internal("not run")));
      ET_RETURN_NOT_OK(
          TryParallelFor(sessions.size(), [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
          scored[s] = [&, s]() -> Result<SeriesPair> {
            ET_RETURN_NOT_OK(watchdog.Check(watched));
            const StudySession& session = sessions[s];
            const uint64_t pred_seed =
                scenario_seed ^ (0xABCDULL + session.participant);
            SeriesPair pair;
            {
              ET_ASSIGN_OR_RETURN(
                  std::unique_ptr<AnnotatorModel> predictor,
                  spec.make(instance, session, pred_seed));
              ET_ASSIGN_OR_RETURN(
                  pair.first,
                  PredictorRRSeries(instance, session, *predictor,
                                    config.top_k, /*plus=*/false,
                                    fd_f1));
            }
            {
              ET_ASSIGN_OR_RETURN(
                  std::unique_ptr<AnnotatorModel> predictor,
                  spec.make(instance, session, pred_seed));
              ET_ASSIGN_OR_RETURN(
                  pair.second,
                  PredictorRRSeries(instance, session, *predictor,
                                    config.top_k, /*plus=*/true,
                                    fd_f1));
            }
            return pair;
          }();
        }
      }));
      std::vector<double> rrs;
      std::vector<double> rrs_plus;
      for (size_t s = 0; s < sessions.size(); ++s) {
        ET_RETURN_NOT_OK(scored[s].status());
        rrs.insert(rrs.end(), scored[s]->first.begin(),
                   scored[s]->first.end());
        rrs_plus.insert(rrs_plus.end(), scored[s]->second.begin(),
                        scored[s]->second.end());
      }
      ModelScenarioScore score;
      score.scenario_id = scenario.id;
      score.model = spec.name;
      score.mrr = MeanReciprocalRank(rrs);
      score.mrr_plus = MeanReciprocalRank(rrs_plus);
      score.sessions = sessions.size();
      result.fig2.push_back(score);
    }

    if (store != nullptr) {
      UserStudyScenarioCheckpoint saved;
      saved.scenario_id = scenario.id;
      saved.avg_f1_change = result.table3.back().avg_f1_change;
      for (const ModelScenarioScore& s : result.fig2) {
        if (s.scenario_id != scenario.id) continue;
        saved.scores.push_back(
            {s.model, s.mrr, s.mrr_plus, s.sessions});
      }
      ET_RETURN_NOT_OK(store->Save(
          ckpt_name, EncodeUserStudyScenario(saved, fingerprint)));
    }
  }
  return result;
}

}  // namespace et
