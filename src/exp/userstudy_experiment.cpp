#include "exp/userstudy_experiment.h"

#include <algorithm>

#include "belief/priors.h"
#include "common/math.h"
#include "metrics/mrr.h"
#include "obs/trace.h"

namespace et {
namespace {

/// Builds the Bayesian(FP) predictor for a session: prior seeded from
/// the participant's initially declared FD (the study elicits it), per
/// App. A.2's configuration.
Result<std::unique_ptr<AnnotatorModel>> MakeBayesianPredictor(
    const ScenarioInstance& instance, const StudySession& session,
    uint64_t seed) {
  ET_ASSIGN_OR_RETURN(
      BeliefModel prior,
      UserPrior(instance.space,
                instance.space->fd(session.prior_hypothesis)));
  BayesianAnnotatorOptions options;  // deterministic, weight 1
  return std::unique_ptr<AnnotatorModel>(
      new BayesianAnnotator(std::move(prior), options, seed));
}

Result<std::unique_ptr<AnnotatorModel>> MakeHTPredictor(
    const ScenarioInstance& instance, const StudySession& session,
    uint64_t seed) {
  HypothesisTestingOptions options;  // test every round on last sample
  return std::unique_ptr<AnnotatorModel>(new HypothesisTestingAnnotator(
      instance.space, session.prior_hypothesis, options, seed));
}

Result<std::unique_ptr<AnnotatorModel>> MakeModelFreePredictor(
    const ScenarioInstance& instance, const StudySession&, uint64_t seed) {
  return std::unique_ptr<AnnotatorModel>(
      new ModelFreeAnnotator(instance.space, ModelFreeOptions{}, seed));
}

struct PredictorSpec {
  std::string name;
  Result<std::unique_ptr<AnnotatorModel>> (*make)(const ScenarioInstance&,
                                                  const StudySession&,
                                                  uint64_t);
};

}  // namespace

Result<UserStudyResult> RunUserStudy(const UserStudyConfig& config) {
  ET_TRACE_SCOPE("exp.userstudy.run");
  if (config.participants == 0) {
    return Status::InvalidArgument("need at least one participant");
  }
  std::vector<PredictorSpec> predictors = {
      {"Bayesian(FP)", &MakeBayesianPredictor},
      {"HypothesisTesting", &MakeHTPredictor},
  };
  if (config.include_model_free) {
    predictors.push_back({"ModelFree", &MakeModelFreePredictor});
  }

  UserStudyResult result;
  const std::vector<Scenario> scenarios = UserStudyScenarios();
  const std::vector<ParticipantProfile> cohort =
      DefaultCohort(config.participants, config.seed);

  for (const Scenario& scenario : scenarios) {
    const uint64_t scenario_seed =
        config.seed ^ (0x5CE9A210ULL * static_cast<uint64_t>(scenario.id));
    ET_ASSIGN_OR_RETURN(
        ScenarioInstance instance,
        InstantiateScenario(scenario, config.instance, scenario_seed));
    ET_ASSIGN_OR_RETURN(std::vector<double> fd_f1,
                        SpaceF1Table(instance));

    // Run every participant, collecting sessions and Table 3 stats.
    std::vector<StudySession> sessions;
    std::vector<double> f1_changes;
    for (size_t p = 0; p < cohort.size(); ++p) {
      ParticipantProfile profile = cohort[p];
      if (scenario.id == 2) {
        // Scenario 2 was markedly harder: more regressions, noisier
        // declarations (App. A.3).
        profile.regression_prob += config.scenario2_extra_regression;
        profile.regression_pool = 12;
        profile.decision_noise = std::max(profile.decision_noise, 0.05);
      }
      const uint64_t part_seed = scenario_seed + 7919ULL * (p + 1);
      ET_ASSIGN_OR_RETURN(
          std::unique_ptr<AnnotatorModel> participant,
          MakeSimulatedParticipant(instance, profile, part_seed));
      Rng session_rng(part_seed ^ 0xFACEULL);
      ET_ASSIGN_OR_RETURN(
          StudySession session,
          RunStudySession(instance, *participant, static_cast<int>(p),
                          config.study, session_rng));
      ET_ASSIGN_OR_RETURN(double change,
                          SessionF1Change(instance, session));
      f1_changes.push_back(change);
      sessions.push_back(std::move(session));
    }
    result.table3.push_back({scenario.id, Mean(f1_changes)});

    // Score every predictor over all sessions.
    for (const PredictorSpec& spec : predictors) {
      std::vector<double> rrs;
      std::vector<double> rrs_plus;
      for (const StudySession& session : sessions) {
        const uint64_t pred_seed =
            scenario_seed ^ (0xABCDULL + session.participant);
        {
          ET_ASSIGN_OR_RETURN(
              std::unique_ptr<AnnotatorModel> predictor,
              spec.make(instance, session, pred_seed));
          ET_ASSIGN_OR_RETURN(
              std::vector<double> series,
              PredictorRRSeries(instance, session, *predictor,
                                config.top_k, /*plus=*/false, fd_f1));
          rrs.insert(rrs.end(), series.begin(), series.end());
        }
        {
          ET_ASSIGN_OR_RETURN(
              std::unique_ptr<AnnotatorModel> predictor,
              spec.make(instance, session, pred_seed));
          ET_ASSIGN_OR_RETURN(
              std::vector<double> series,
              PredictorRRSeries(instance, session, *predictor,
                                config.top_k, /*plus=*/true, fd_f1));
          rrs_plus.insert(rrs_plus.end(), series.begin(), series.end());
        }
      }
      ModelScenarioScore score;
      score.scenario_id = scenario.id;
      score.model = spec.name;
      score.mrr = MeanReciprocalRank(rrs);
      score.mrr_plus = MeanReciprocalRank(rrs_plus);
      score.sessions = sessions.size();
      result.fig2.push_back(score);
    }
  }
  return result;
}

}  // namespace et
