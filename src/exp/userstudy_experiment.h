// The user-study experiment runner (App. A): runs the simulated cohort
// through the five Table 2 scenarios, scores each human-learning model's
// ability to predict participants' declared hypotheses (Figure 2, MRR
// with k = 5, exact and "+"), and computes the per-scenario average
// f1-score change between rounds (Table 3).

#ifndef ET_EXP_USERSTUDY_EXPERIMENT_H_
#define ET_EXP_USERSTUDY_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "human/study.h"

namespace et {

struct UserStudyConfig {
  size_t participants = 20;
  StudyOptions study;
  ScenarioInstanceOptions instance;
  uint64_t seed = 7;
  size_t top_k = 5;
  /// Extra non-monotone behaviour injected for scenario 2 (the paper
  /// reports participants there "often moved from more accurate beliefs
  /// to less accurate ones").
  double scenario2_extra_regression = 0.35;
  /// Also evaluate the model-free (reinforcement) predictor — beyond
  /// the paper's Figure 2, which compares Bayesian vs HT.
  bool include_model_free = false;
  /// When non-empty, each finished scenario journals its Figure 2 and
  /// Table 3 rows to a checkpoint file here (atomically).
  std::string checkpoint_dir;
  /// Skip scenarios whose checkpoint (keyed to this config's
  /// fingerprint) already exists; results are bit-identical to an
  /// uninterrupted run.
  bool resume = false;
  /// Watchdog: a scenario running longer than this is aborted with
  /// kDeadlineExceeded; earlier scenarios are already checkpointed.
  /// 0 disables.
  double scenario_deadline_ms = 0.0;
};

/// MRR of one model on one scenario (Figure 2 bar).
struct ModelScenarioScore {
  int scenario_id = 0;
  std::string model;
  /// Exact-match MRR and subset/superset-credited MRR ("+"-variant).
  double mrr = 0.0;
  double mrr_plus = 0.0;
  size_t sessions = 0;
};

/// Table 3 row.
struct ScenarioF1Change {
  int scenario_id = 0;
  double avg_f1_change = 0.0;
};

struct UserStudyResult {
  std::vector<ModelScenarioScore> fig2;
  std::vector<ScenarioF1Change> table3;
};

Result<UserStudyResult> RunUserStudy(const UserStudyConfig& config);

}  // namespace et

#endif  // ET_EXP_USERSTUDY_EXPERIMENT_H_
