// JSON codecs for experiment checkpoints.
//
// A convergence repetition checkpoints one file per repetition,
// re-saved after every completed policy cell; a user-study run
// checkpoints one file per scenario. Payloads are versioned and carry
// the producing config's fingerprint, so a resume against a different
// configuration is rejected instead of silently mixing results.
//
// Doubles round-trip exactly (the JSON layer emits %.17g and parses
// with strtod), which is what makes a resumed run bit-identical to an
// uninterrupted one. NaN — used as the "no samples" sentinel in rep
// outcomes — is not representable in JSON and travels as null. 64-bit
// seeds and RNG words exceed a double's integer range and travel as
// decimal strings.

#ifndef ET_EXP_EXP_CHECKPOINT_H_
#define ET_EXP_EXP_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace et {

/// One completed (repetition, policy) cell of a convergence run:
/// everything the cross-repetition reduction consumes, plus the final
/// agent beliefs (Beta parameters) for forensics and warm restarts.
struct ConvergenceCellCheckpoint {
  /// PolicyKindToString of the cell's policy; matched on resume so a
  /// reordered policy list invalidates the cell rather than mislabeling
  /// its series.
  std::string policy;
  std::vector<double> mae_series;
  std::vector<double> f1_series;
  double initial_mae = 0.0;
  double final_mae = 0.0;  // NaN = run produced no iterations
  double final_f1 = 0.0;   // NaN = no F1 samples
  std::vector<double> trainer_alpha;
  std::vector<double> trainer_beta;
  std::vector<double> learner_alpha;
  std::vector<double> learner_beta;
};

/// One convergence repetition's journal: completed cells in policy
/// order plus the repetition-level state needed to vouch for them.
struct ConvergenceRepCheckpoint {
  uint64_t rep = 0;
  uint64_t rep_seed = 0;
  /// Violation degree the dataset preparation achieved (prep is
  /// deterministic in rep_seed, so a fully-checkpointed repetition can
  /// skip it entirely and reuse this).
  double degree = 0.0;
  /// Repetition RNG state after dataset preparation (xoshiro256**
  /// words). Informational for partial resumes — prep re-derives it
  /// from rep_seed — but lets offline tooling continue the stream.
  std::array<uint64_t, 4> rng_state{};
  std::vector<ConvergenceCellCheckpoint> cells;
};

std::string EncodeConvergenceRep(const ConvergenceRepCheckpoint& rep,
                                 const std::string& fingerprint);

/// Rejects version or fingerprint mismatches with kInvalidArgument and
/// malformed payloads with kIOError (a torn file is an I/O problem).
Result<ConvergenceRepCheckpoint> DecodeConvergenceRep(
    const std::string& json, const std::string& expected_fingerprint);

/// One user-study scenario's finished outputs: the Table 3 row and the
/// Figure 2 rows for every predictor.
struct UserStudyScenarioCheckpoint {
  int scenario_id = 0;
  double avg_f1_change = 0.0;
  struct PredictorScore {
    std::string model;
    double mrr = 0.0;
    double mrr_plus = 0.0;
    uint64_t sessions = 0;
  };
  std::vector<PredictorScore> scores;
};

std::string EncodeUserStudyScenario(const UserStudyScenarioCheckpoint& sc,
                                    const std::string& fingerprint);

Result<UserStudyScenarioCheckpoint> DecodeUserStudyScenario(
    const std::string& json, const std::string& expected_fingerprint);

}  // namespace et

#endif  // ET_EXP_EXP_CHECKPOINT_H_
