// The empirical-study runner (App. C): a learning (FP) trainer against a
// learner using one of the four response policies, over a dirty dataset
// with a 38-FD hypothesis space; measures per-iteration trainer/learner
// belief MAE (Figures 1, 3–6) and optionally held-out error-detection F1
// (Figure 7). Results are averaged over seeded repetitions.

#ifndef ET_EXP_CONVERGENCE_EXPERIMENT_H_
#define ET_EXP_CONVERGENCE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/policies.h"

namespace et {

/// Which prior an agent starts from (App. C.1).
enum class PriorKind { kUniform, kRandom, kDataEstimate };

const char* PriorKindToString(PriorKind kind);

struct PriorSpec {
  PriorKind kind = PriorKind::kRandom;
  /// Uniform-d's d.
  double uniform_d = 0.9;
  /// Beta pseudo-count alpha+beta of the prior: how much evidence it
  /// takes to move the belief (belief stiffness).
  double strength = 30.0;
};

struct ConvergenceConfig {
  /// "omdb", "airport", "hospital", "tax" — or "csv:<path>" to run on
  /// a user-supplied CSV file (header row = schema). For CSV data the
  /// watched FDs for error injection are discovered from the data
  /// (approximate discovery, g1 <= csv_discovery_threshold); pass
  /// violation_degree = 0 to play the game on the data as-is.
  std::string dataset = "omdb";
  /// Discovery threshold used to find watchable FDs in CSV data.
  double csv_discovery_threshold = 0.05;
  size_t rows = 400;
  /// Target degree of violation injected w.r.t. the dataset's clean FDs.
  double violation_degree = 0.10;
  PriorSpec trainer_prior{PriorKind::kRandom, 0.9};
  PriorSpec learner_prior{PriorKind::kDataEstimate, 0.9};
  /// Hypothesis-space size (paper: 38) and FD width cap (paper: 4).
  size_t hypothesis_cap = 38;
  int max_fd_attrs = 4;
  /// Interaction schedule (paper: N = 30, k = 10 tuples = 5 pairs).
  size_t iterations = 30;
  size_t pairs_per_iteration = 5;
  /// Stochastic-policy temperature (paper: 0.5).
  double gamma = 0.5;
  /// Seeded repetitions averaged into each series.
  size_t repetitions = 5;
  uint64_t seed = 42;
  /// Also compute held-out error-detection F1 per iteration (Figure 7).
  bool compute_f1 = false;
  double test_fraction = 0.3;
  /// Policies to run; empty = all four.
  std::vector<PolicyKind> policies;
  /// When non-empty, each repetition journals a checkpoint file here
  /// (re-saved after every completed policy cell, atomically).
  std::string checkpoint_dir;
  /// Load matching checkpoints from checkpoint_dir and recompute only
  /// what is missing. Results are bit-identical to an uninterrupted
  /// run at any thread count. Checkpoints are keyed to a fingerprint
  /// of every result-affecting field above, so a config change makes
  /// old checkpoints an error, never a silently mixed result.
  bool resume = false;
  /// Watchdog: a repetition running longer than this is aborted with
  /// kDeadlineExceeded; its completed policy cells are already
  /// checkpointed, so a resume continues from them. 0 disables.
  double rep_deadline_ms = 0.0;
};

/// Averaged per-iteration series for one policy.
struct MethodSeries {
  PolicyKind policy;
  /// MAE between trainer and learner beliefs, index = iteration - 1.
  std::vector<double> mae;
  /// Held-out F1 (empty unless compute_f1).
  std::vector<double> f1;
  /// MAE before any interaction (prior disagreement), averaged.
  double initial_mae = 0.0;
  /// Final-iteration values per repetition (paired across policies:
  /// index = repetition), for confidence intervals and paired tests.
  std::vector<double> final_mae_per_rep;
  std::vector<double> final_f1_per_rep;
};

struct ConvergenceResult {
  ConvergenceConfig config;
  std::vector<MethodSeries> methods;
  /// Violation degree actually reached (averaged over repetitions).
  double achieved_degree = 0.0;
};

Result<ConvergenceResult> RunConvergenceExperiment(
    const ConvergenceConfig& config);

}  // namespace et

#endif  // ET_EXP_CONVERGENCE_EXPERIMENT_H_
