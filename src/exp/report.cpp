#include "exp/report.h"

#include <algorithm>
#include <fstream>

#include "common/strings.h"
#include "robustness/fault.h"

namespace et {

TableReporter::TableReporter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Status TableReporter::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(cells.size()) +
        " != header width " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
  return Status::OK();
}

std::string TableReporter::Num(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

std::string TableReporter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto format_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') +
              " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + format_row(headers_) + sep;
  for (const auto& row : rows_) out += format_row(row);
  out += sep;
  return out;
}

std::string CsvEscapeCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out += '"';
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {

std::string CsvLine(const std::vector<std::string>& cells) {
  std::vector<std::string> escaped;
  escaped.reserve(cells.size());
  for (const std::string& cell : cells) {
    escaped.push_back(CsvEscapeCell(cell));
  }
  return Join(escaped, ",");
}

}  // namespace

Status WriteCsv(const std::string& path,
                const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows) {
  ET_FAULT_POINT("report.write");
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << CsvLine(headers) << "\n";
  for (const auto& row : rows) {
    if (row.size() != headers.size()) {
      return Status::InvalidArgument("csv row width mismatch");
    }
    out << CsvLine(row) << "\n";
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace et
