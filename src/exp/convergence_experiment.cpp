#include "exp/convergence_experiment.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "belief/priors.h"
#include "common/thread_pool.h"
#include "core/candidates.h"
#include "core/game.h"
#include "data/csv.h"
#include "data/datasets.h"
#include "data/split.h"
#include "errgen/error_generator.h"
#include "exp/exp_checkpoint.h"
#include "fd/discovery.h"
#include "fd/error_detector.h"
#include "fd/eval_cache.h"
#include "fd/g1.h"
#include "metrics/classification.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robustness/checkpoint.h"
#include "robustness/fault.h"
#include "robustness/retry.h"
#include "robustness/watchdog.h"

namespace et {
namespace {

Result<BeliefModel> BuildPrior(const PriorSpec& spec,
                               std::shared_ptr<const HypothesisSpace> space,
                               const Relation& rel, Rng& rng,
                               EvalCache* cache) {
  switch (spec.kind) {
    case PriorKind::kUniform:
      return UniformPrior(std::move(space), spec.uniform_d, spec.strength);
    case PriorKind::kRandom:
      return RandomPrior(std::move(space), rng, spec.strength);
    case PriorKind::kDataEstimate:
      return DataEstimatePrior(std::move(space), rel, spec.strength,
                               cache);
  }
  return Status::InvalidArgument("unknown prior kind");
}

/// Held-out F1 of the learner's current model: dirty probabilities from
/// the belief's endorsed FDs, thresholded, scored against ground truth.
Result<double> HeldOutF1(const BeliefModel& belief, const Relation& rel,
                         const std::vector<RowId>& test_rows,
                         const DirtyGroundTruth& truth,
                         EvalCache* cache) {
  std::vector<WeightedFD> wfds;
  for (size_t i = 0; i < belief.size(); ++i) {
    const double mu = belief.Confidence(i);
    if (mu <= 0.5) continue;
    wfds.push_back({belief.space().fd(i), mu, (mu - 0.5) * 2.0});
  }
  std::vector<double> probs =
      DirtyProbabilities(rel, test_rows, wfds, cache);
  const std::vector<bool> predicted = PredictDirty(probs);
  std::vector<bool> actual(test_rows.size());
  for (size_t i = 0; i < test_rows.size(); ++i) {
    actual[i] = truth.dirty_rows[test_rows[i]];
  }
  ET_ASSIGN_OR_RETURN(PRF1 s, DetectionScores(predicted, actual));
  return s.f1;
}

/// Accumulates per-iteration values across repetitions (padding short
/// runs with their final value so early pool exhaustion does not skew
/// the average).
class SeriesAccumulator {
 public:
  explicit SeriesAccumulator(size_t length) : sums_(length, 0.0) {}

  void Add(const std::vector<double>& series) {
    if (series.empty()) return;
    for (size_t i = 0; i < sums_.size(); ++i) {
      sums_[i] += (i < series.size()) ? series[i] : series.back();
    }
    ++count_;
  }

  std::vector<double> Average() const {
    std::vector<double> out(sums_.size(), 0.0);
    if (count_ == 0) return out;
    for (size_t i = 0; i < sums_.size(); ++i) {
      out[i] = sums_[i] / static_cast<double>(count_);
    }
    return out;
  }

 private:
  std::vector<double> sums_;
  size_t count_ = 0;
};

/// Everything one repetition produces, stored per policy. Merging into
/// the cross-repetition accumulators happens serially in repetition
/// order, so floating-point reduction order — and therefore the final
/// result — is identical at any thread count.
struct RepOutcome {
  double degree = 0.0;
  std::vector<std::vector<double>> mae_series;  // per policy
  std::vector<std::vector<double>> f1_series;   // per policy
  std::vector<double> initial_mae;              // per policy
  std::vector<double> final_mae;  // per policy; NaN = no iterations
  std::vector<double> final_f1;   // per policy; NaN = no F1 samples
};

/// Canonical text form of every result-affecting config field (the
/// resilience knobs — checkpoint_dir, resume, deadline — deliberately
/// excluded: they must not invalidate checkpoints). Doubles render
/// with %.17g so distinct configs never collide via rounding.
std::string CanonicalConfig(const ConvergenceConfig& config,
                            const std::vector<PolicyKind>& policies) {
  std::string out = "convergence-v1";
  auto num = [&out](const char* key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "|%s=%.17g", key, v);
    out += buf;
  };
  out += "|dataset=" + config.dataset;
  num("csv_thresh", config.csv_discovery_threshold);
  num("rows", static_cast<double>(config.rows));
  num("degree", config.violation_degree);
  auto prior = [&](const char* key, const PriorSpec& spec) {
    out += std::string("|") + key + "=" + PriorKindToString(spec.kind);
    num("d", spec.uniform_d);
    num("strength", spec.strength);
  };
  prior("trainer_prior", config.trainer_prior);
  prior("learner_prior", config.learner_prior);
  num("cap", static_cast<double>(config.hypothesis_cap));
  num("max_attrs", config.max_fd_attrs);
  num("iters", static_cast<double>(config.iterations));
  num("pairs", static_cast<double>(config.pairs_per_iteration));
  num("gamma", config.gamma);
  num("reps", static_cast<double>(config.repetitions));
  out += "|seed=" + std::to_string(config.seed);
  out += config.compute_f1 ? "|f1" : "|nof1";
  num("test_frac", config.test_fraction);
  for (PolicyKind p : policies) {
    out += std::string("|policy=") + PolicyKindToString(p);
  }
  return out;
}

/// Loads rep `rep`'s journal (when resuming) and returns how many of
/// its cells line up with the current policy list; mismatched or
/// trailing cells are dropped so they are recomputed, not mislabeled.
Result<size_t> LoadRepJournal(const ConvergenceConfig& config,
                              const std::vector<PolicyKind>& policies,
                              CheckpointStore* store,
                              const std::string& fingerprint,
                              const std::string& name, uint64_t rep_seed,
                              ConvergenceRepCheckpoint* journal) {
  if (store == nullptr || !config.resume) return 0;
  Result<std::string> payload = store->Load(name);
  if (payload.status().IsNotFound()) return 0;
  ET_RETURN_NOT_OK(payload.status());
  ET_ASSIGN_OR_RETURN(ConvergenceRepCheckpoint loaded,
                      DecodeConvergenceRep(*payload, fingerprint));
  if (loaded.rep_seed != rep_seed) {
    return Status::InvalidArgument(
        "checkpoint " + name + " has rep_seed " +
        std::to_string(loaded.rep_seed) + ", expected " +
        std::to_string(rep_seed));
  }
  size_t usable = 0;
  while (usable < loaded.cells.size() && usable < policies.size() &&
         loaded.cells[usable].policy ==
             PolicyKindToString(policies[usable])) {
    ++usable;
  }
  loaded.cells.resize(usable);
  *journal = std::move(loaded);
  ET_COUNTER_ADD("exp.convergence.cells_resumed", usable);
  return usable;
}

Result<RepOutcome> RunOneRep(const ConvergenceConfig& config,
                             const std::vector<PolicyKind>& policies,
                             size_t rep, CheckpointStore* store,
                             const std::string& fingerprint) {
  ET_TRACE_SCOPE("exp.convergence.rep");
  ET_COUNTER_INC("exp.convergence.reps");
  ET_FAULT_POINT("exp.rep");
  // Each repetition owns a SplitMix64-derived seed (Rng::Seed expands
  // it), so repetitions are independent streams and parallel execution
  // is bit-identical to serial. It also makes resume trivial to keep
  // bit-identical: nothing a repetition computes depends on any other
  // repetition's stream.
  const uint64_t rep_seed = config.seed + 1000003ULL * rep;
  Rng rng(rep_seed);

  const double nan = std::nan("");
  RepOutcome out;
  out.mae_series.resize(policies.size());
  out.f1_series.resize(policies.size());
  out.initial_mae.assign(policies.size(), 0.0);
  out.final_mae.assign(policies.size(), nan);
  out.final_f1.assign(policies.size(), nan);

  const std::string ckpt_name = "rep-" + std::to_string(rep);
  ConvergenceRepCheckpoint journal;
  journal.rep = rep;
  journal.rep_seed = rep_seed;
  ET_ASSIGN_OR_RETURN(
      const size_t resumed_cells,
      LoadRepJournal(config, policies, store, fingerprint, ckpt_name,
                     rep_seed, &journal));
  for (size_t pi = 0; pi < resumed_cells; ++pi) {
    const ConvergenceCellCheckpoint& cell = journal.cells[pi];
    out.mae_series[pi] = cell.mae_series;
    out.f1_series[pi] = cell.f1_series;
    out.initial_mae[pi] = cell.initial_mae;
    out.final_mae[pi] = cell.final_mae;
    out.final_f1[pi] = cell.final_f1;
  }
  if (resumed_cells == policies.size()) {
    // Fully journaled: skip dataset preparation entirely. The degree
    // was measured by the original run of the same rep_seed.
    out.degree = journal.degree;
    return out;
  }

  // The watchdog covers the whole repetition — preparation included —
  // and is polled cooperatively (between interactions and between
  // policy cells): preempting mid-update would leave nothing
  // checkpointable. Cells finished before expiry are already saved.
  Watchdog watchdog(config.rep_deadline_ms);

  // Data: a built-in generator (clean, then dirtied to the requested
  // degree) or a user CSV ("csv:<path>"; FDs discovered from the
  // data).
  obs::ManualSpan prep_span("exp.dataset.prepare");
  Dataset data;
  if (config.dataset.rfind("csv:", 0) == 0) {
    const std::string path = config.dataset.substr(4);
    ET_ASSIGN_OR_RETURN(
        data.rel,
        RetryResultWithBackoff<Relation>(
            "dataset csv read", [&] { return ReadCsvFile(path); }));
    data.name = path;
    DiscoveryOptions discovery;
    discovery.g1_threshold = config.csv_discovery_threshold;
    discovery.max_lhs_size = config.max_fd_attrs - 1;
    ET_ASSIGN_OR_RETURN(std::vector<DiscoveredFD> found,
                        DiscoverFDs(data.rel, discovery));
    EvalCache clean_cache(data.rel);
    for (const DiscoveredFD& d : found) {
      // g1 normalizes by n^2, so an FD can pass the threshold while
      // violating a large share of its LHS-agreeing pairs; gate on
      // pairwise confidence so injection watches rules that actually
      // hold.
      if (clean_cache.PairwiseConfidence(d.fd) < 0.9) continue;
      data.clean_fds.push_back(d.fd.ToString(data.rel.schema()));
    }
    data.documented_fds = data.clean_fds;
    if (data.rel.num_rows() < 4) {
      return Status::InvalidArgument("CSV dataset too small: " + path);
    }
  } else {
    ET_ASSIGN_OR_RETURN(
        data, MakeDatasetByName(config.dataset, config.rows, rep_seed));
  }
  std::vector<FD> clean_fds;
  for (const std::string& text : data.clean_fds) {
    ET_ASSIGN_OR_RETURN(FD fd, ParseFD(text, data.rel.schema()));
    if (fd.NumAttributes() <= config.max_fd_attrs) {
      clean_fds.push_back(fd);
    }
  }
  // Injection watches the *documented* FDs of the dataset (App. C.1
  // lists 6 for Hospital and 4 for Tax); watching every construction
  // FD would demand far more scrambling than the paper's degrees
  // imply.
  std::vector<FD> watched;
  for (const std::string& text : data.documented_fds) {
    ET_ASSIGN_OR_RETURN(FD fd, ParseFD(text, data.rel.schema()));
    if (fd.NumAttributes() <= config.max_fd_attrs) {
      watched.push_back(fd);
    }
  }
  if (watched.empty()) watched = clean_fds;
  ErrorGenerator gen(&data.rel, rng.NextUint64());
  if (config.violation_degree > 0.0) {
    ET_RETURN_NOT_OK(gen.InjectToDegree(watched, config.violation_degree));
  }
  out.degree = gen.MeasureDegree(watched);
  journal.degree = out.degree;
  const DirtyGroundTruth truth = gen.ground_truth();

  // Shared partition cache over the final (dirty) relation: priors,
  // candidate pools, and per-iteration F1 scans all reuse it. Created
  // only after injection — the cache assumes an immutable relation.
  EvalCache cache(data.rel);

  // Hypothesis space over the dirty data (what agents can see). The
  // must-include list is truncated for CSV datasets whose discovery
  // pass may return more FDs than the cap.
  std::vector<FD> must_include = clean_fds;
  if (must_include.size() > config.hypothesis_cap / 2) {
    must_include.resize(config.hypothesis_cap / 2);
  }
  ET_ASSIGN_OR_RETURN(
      HypothesisSpace capped,
      HypothesisSpace::BuildCapped(data.rel, config.max_fd_attrs,
                                   config.hypothesis_cap, must_include));
  auto space = std::make_shared<const HypothesisSpace>(std::move(capped));

  // Train/test split for the F1 metric.
  Split split;
  if (config.compute_f1) {
    ET_ASSIGN_OR_RETURN(
        split,
        TrainTestSplit(data.rel.num_rows(), config.test_fraction, rng));
  } else {
    split.train.resize(data.rel.num_rows());
    for (RowId r = 0; r < data.rel.num_rows(); ++r) split.train[r] = r;
  }

  prep_span.End();
  journal.rng_state = rng.SaveState();

  for (size_t pi = resumed_cells; pi < policies.size(); ++pi) {
    ET_TRACE_SCOPE("exp.policy.run");
    ET_RETURN_NOT_OK(watchdog.Check("convergence repetition " +
                                    std::to_string(rep)));
    // Same per-rep seeds across policies so they face the same
    // trainer and priors; only the response policy differs.
    Rng agent_rng(rep_seed ^ 0xA6EA75EEDULL);
    ET_ASSIGN_OR_RETURN(BeliefModel trainer_prior,
                        BuildPrior(config.trainer_prior, space, data.rel,
                                   agent_rng, &cache));
    ET_ASSIGN_OR_RETURN(BeliefModel learner_prior,
                        BuildPrior(config.learner_prior, space, data.rel,
                                   agent_rng, &cache));

    CandidateOptions pool_options;
    pool_options.restrict_to = split.train;
    pool_options.cache = &cache;
    Rng pool_rng(rep_seed ^ 0xB00AULL);
    ET_ASSIGN_OR_RETURN(
        std::vector<RowPair> pool,
        BuildCandidatePairs(data.rel, *space, pool_options, pool_rng));

    PolicyOptions policy_options;
    policy_options.gamma = config.gamma;
    Trainer trainer(std::move(trainer_prior), TrainerOptions{},
                    rep_seed ^ 0x77ULL);
    Learner learner(std::move(learner_prior),
                    MakePolicy(policies[pi], policy_options),
                    std::move(pool), LearnerOptions{},
                    (rep_seed ^ 0x1E42ULL) + pi);

    GameOptions game_options;
    game_options.iterations = config.iterations;
    game_options.pairs_per_iteration = config.pairs_per_iteration;
    game_options.abort_check = [&watchdog, rep] {
      return watchdog.Check("convergence repetition " +
                            std::to_string(rep));
    };
    Game game(&data.rel, std::move(trainer), std::move(learner),
              game_options);

    std::vector<double> f1_series;
    Status f1_status = Status::OK();
    IterationCallback callback = nullptr;
    if (config.compute_f1) {
      callback = [&](const IterationRecord&) {
        auto f1 = HeldOutF1(game.learner().belief(), data.rel, split.test,
                            truth, &cache);
        if (f1.ok()) {
          f1_series.push_back(*f1);
        } else if (f1_status.ok()) {
          f1_status = f1.status();
        }
      };
    }
    ET_ASSIGN_OR_RETURN(GameResult game_result, game.Run(callback));
    ET_RETURN_NOT_OK(f1_status);

    out.mae_series[pi] = game_result.MaeSeries();
    out.initial_mae[pi] = game_result.initial_mae;
    if (!game_result.iterations.empty()) {
      out.final_mae[pi] = game_result.iterations.back().mae;
    }
    if (config.compute_f1) {
      out.f1_series[pi] = std::move(f1_series);
      if (!out.f1_series[pi].empty()) {
        out.final_f1[pi] = out.f1_series[pi].back();
      }
    }

    if (store != nullptr) {
      // Journal the finished cell. The re-save rewrites the whole rep
      // file (cells are small), atomically, so a crash between cells
      // loses at most the in-flight cell.
      ConvergenceCellCheckpoint cell;
      cell.policy = PolicyKindToString(policies[pi]);
      cell.mae_series = out.mae_series[pi];
      cell.f1_series = out.f1_series[pi];
      cell.initial_mae = out.initial_mae[pi];
      cell.final_mae = out.final_mae[pi];
      cell.final_f1 = out.final_f1[pi];
      const BeliefModel& tb = game.trainer().belief();
      const BeliefModel& lb = game.learner().belief();
      for (size_t i = 0; i < tb.size(); ++i) {
        cell.trainer_alpha.push_back(tb.beta(i).alpha());
        cell.trainer_beta.push_back(tb.beta(i).beta());
      }
      for (size_t i = 0; i < lb.size(); ++i) {
        cell.learner_alpha.push_back(lb.beta(i).alpha());
        cell.learner_beta.push_back(lb.beta(i).beta());
      }
      journal.cells.push_back(std::move(cell));
      ET_RETURN_NOT_OK(store->Save(
          ckpt_name, EncodeConvergenceRep(journal, fingerprint)));
    }
  }
  return out;
}

}  // namespace

const char* PriorKindToString(PriorKind kind) {
  switch (kind) {
    case PriorKind::kUniform:
      return "Uniform";
    case PriorKind::kRandom:
      return "Random";
    case PriorKind::kDataEstimate:
      return "Data-estimate";
  }
  return "?";
}

Result<ConvergenceResult> RunConvergenceExperiment(
    const ConvergenceConfig& config) {
  ET_TRACE_SCOPE("exp.convergence.run");
  if (config.repetitions == 0) {
    return Status::InvalidArgument("repetitions must be positive");
  }
  std::vector<PolicyKind> policies = config.policies;
  if (policies.empty()) policies = AllPolicyKinds();

  ConvergenceResult result;
  result.config = config;

  // Checkpoints are namespaced by a fingerprint of the resolved
  // config: a resume against a changed config finds no files (or
  // rejects stale ones) instead of mixing incompatible results.
  std::string fingerprint;
  std::unique_ptr<CheckpointStore> store;
  if (!config.checkpoint_dir.empty()) {
    fingerprint = ConfigFingerprint(CanonicalConfig(config, policies));
    store = std::make_unique<CheckpointStore>(config.checkpoint_dir,
                                              "conv-" + fingerprint);
  }

  // Repetitions are independent given their derived seeds: run them in
  // parallel, each writing its own outcome slot, then reduce serially
  // in repetition order below. TryParallelFor is the pool boundary:
  // an exception escaping a repetition (including injected pool
  // faults) surfaces here as a Status, never as a crash.
  std::vector<Result<RepOutcome>> outcomes(
      config.repetitions, Result<RepOutcome>(Status::Internal("not run")));
  ET_RETURN_NOT_OK(
      TryParallelFor(config.repetitions, [&](size_t begin, size_t end) {
        for (size_t rep = begin; rep < end; ++rep) {
          outcomes[rep] =
              RunOneRep(config, policies, rep, store.get(), fingerprint);
        }
      }));

  std::vector<SeriesAccumulator> mae_acc(
      policies.size(), SeriesAccumulator(config.iterations));
  std::vector<SeriesAccumulator> f1_acc(
      policies.size(), SeriesAccumulator(config.iterations));
  std::vector<double> initial_mae_sum(policies.size(), 0.0);
  std::vector<std::vector<double>> final_mae(policies.size());
  std::vector<std::vector<double>> final_f1(policies.size());
  double degree_sum = 0.0;

  for (size_t rep = 0; rep < config.repetitions; ++rep) {
    ET_RETURN_NOT_OK(outcomes[rep].status());
    const RepOutcome& out = *outcomes[rep];
    degree_sum += out.degree;
    for (size_t pi = 0; pi < policies.size(); ++pi) {
      mae_acc[pi].Add(out.mae_series[pi]);
      if (config.compute_f1) f1_acc[pi].Add(out.f1_series[pi]);
      initial_mae_sum[pi] += out.initial_mae[pi];
      if (!std::isnan(out.final_mae[pi])) {
        final_mae[pi].push_back(out.final_mae[pi]);
      }
      if (config.compute_f1 && !std::isnan(out.final_f1[pi])) {
        final_f1[pi].push_back(out.final_f1[pi]);
      }
    }
  }

  result.achieved_degree =
      degree_sum / static_cast<double>(config.repetitions);
  for (size_t pi = 0; pi < policies.size(); ++pi) {
    MethodSeries series;
    series.policy = policies[pi];
    series.mae = mae_acc[pi].Average();
    if (config.compute_f1) series.f1 = f1_acc[pi].Average();
    series.initial_mae =
        initial_mae_sum[pi] / static_cast<double>(config.repetitions);
    series.final_mae_per_rep = final_mae[pi];
    series.final_f1_per_rep = final_f1[pi];
    result.methods.push_back(std::move(series));
  }
  return result;
}

}  // namespace et
