// Plain-text and CSV reporting for the experiment harness. Benches
// print paper-style tables/series with these helpers.

#ifndef ET_EXP_REPORT_H_
#define ET_EXP_REPORT_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace et {

/// Fixed-width ASCII table builder.
class TableReporter {
 public:
  explicit TableReporter(std::vector<std::string> headers);

  /// Row width must match the header width.
  Status AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string Num(double v, int precision = 4);

  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// RFC-4180 cell quoting: cells containing a comma, double quote, or
/// line break are wrapped in double quotes with embedded quotes
/// doubled; all other cells pass through verbatim.
std::string CsvEscapeCell(const std::string& cell);

/// Writes a CSV file (headers + rows); cells are escaped per RFC 4180,
/// so arbitrary content (commas, quotes, newlines) round-trips.
Status WriteCsv(const std::string& path,
                const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows);

}  // namespace et

#endif  // ET_EXP_REPORT_H_
