#include "exp/exp_checkpoint.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "obs/json.h"

namespace et {
namespace {

constexpr int kConvergenceVersion = 1;
constexpr int kUserStudyVersion = 1;

/// NaN is the "no samples" sentinel in rep outcomes; JSON has no NaN,
/// so it travels as null.
void WriteMaybeNan(obs::JsonWriter& w, double v) {
  if (std::isnan(v)) {
    w.Null();
  } else {
    w.Double(v);
  }
}

void WriteDoubleArray(obs::JsonWriter& w, std::string_view key,
                      const std::vector<double>& values) {
  w.Key(key);
  w.BeginArray();
  for (double v : values) WriteMaybeNan(w, v);
  w.EndArray();
}

void WriteU64String(obs::JsonWriter& w, std::string_view key, uint64_t v) {
  w.Key(key);
  w.String(std::to_string(v));
}

Status Malformed(const std::string& what) {
  // A torn or garbled checkpoint is an I/O-layer problem (and is
  // retried as such by the store before reaching the decoder).
  return Status::IOError("malformed checkpoint: " + what);
}

Result<double> ReadMaybeNan(const obs::JsonValue& v,
                            const std::string& what) {
  if (v.kind == obs::JsonValue::Kind::kNull) return std::nan("");
  if (!v.is_number()) return Malformed(what + " is not a number");
  return v.number;
}

Result<double> ReadNumberField(const obs::JsonValue& obj,
                               const std::string& key) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr) return Malformed("missing field " + key);
  return ReadMaybeNan(*v, key);
}

Result<std::string> ReadStringField(const obs::JsonValue& obj,
                                    const std::string& key) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_string()) {
    return Malformed("missing string field " + key);
  }
  return v->string_value;
}

Result<std::vector<double>> ReadDoubleArrayField(const obs::JsonValue& obj,
                                                 const std::string& key) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_array()) {
    return Malformed("missing array field " + key);
  }
  std::vector<double> out;
  out.reserve(v->array.size());
  for (const obs::JsonValue& elem : v->array) {
    ET_ASSIGN_OR_RETURN(double d, ReadMaybeNan(elem, key + " element"));
    out.push_back(d);
  }
  return out;
}

Result<uint64_t> ReadU64Field(const obs::JsonValue& obj,
                              const std::string& key) {
  ET_ASSIGN_OR_RETURN(std::string text, ReadStringField(obj, key));
  if (text.empty()) return Malformed(key + " is empty");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return Malformed(key + " is not a u64: " + text);
  }
  return static_cast<uint64_t>(v);
}

/// Shared header check: version + fingerprint + kind tag.
Status CheckHeader(const obs::JsonValue& root, const std::string& kind,
                   int version, const std::string& expected_fingerprint) {
  if (!root.is_object()) return Malformed("root is not an object");
  ET_ASSIGN_OR_RETURN(std::string got_kind, ReadStringField(root, "kind"));
  if (got_kind != kind) {
    return Status::InvalidArgument("checkpoint kind mismatch: expected " +
                                   kind + ", got " + got_kind);
  }
  ET_ASSIGN_OR_RETURN(double got_version,
                      ReadNumberField(root, "version"));
  if (got_version != static_cast<double>(version)) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  ET_ASSIGN_OR_RETURN(std::string fp, ReadStringField(root, "fingerprint"));
  if (fp != expected_fingerprint) {
    return Status::InvalidArgument(
        "checkpoint was produced by a different configuration "
        "(fingerprint " + fp + " != " + expected_fingerprint + ")");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeConvergenceRep(const ConvergenceRepCheckpoint& rep,
                                 const std::string& fingerprint) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("kind");
  w.String("convergence-rep");
  w.Key("version");
  w.Int(kConvergenceVersion);
  w.Key("fingerprint");
  w.String(fingerprint);
  WriteU64String(w, "rep", rep.rep);
  WriteU64String(w, "rep_seed", rep.rep_seed);
  w.Key("degree");
  WriteMaybeNan(w, rep.degree);
  w.Key("rng_state");
  w.BeginArray();
  for (uint64_t word : rep.rng_state) w.String(std::to_string(word));
  w.EndArray();
  w.Key("cells");
  w.BeginArray();
  for (const ConvergenceCellCheckpoint& cell : rep.cells) {
    w.BeginObject();
    w.Key("policy");
    w.String(cell.policy);
    WriteDoubleArray(w, "mae", cell.mae_series);
    WriteDoubleArray(w, "f1", cell.f1_series);
    w.Key("initial_mae");
    WriteMaybeNan(w, cell.initial_mae);
    w.Key("final_mae");
    WriteMaybeNan(w, cell.final_mae);
    w.Key("final_f1");
    WriteMaybeNan(w, cell.final_f1);
    WriteDoubleArray(w, "trainer_alpha", cell.trainer_alpha);
    WriteDoubleArray(w, "trainer_beta", cell.trainer_beta);
    WriteDoubleArray(w, "learner_alpha", cell.learner_alpha);
    WriteDoubleArray(w, "learner_beta", cell.learner_beta);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Release();
}

Result<ConvergenceRepCheckpoint> DecodeConvergenceRep(
    const std::string& json, const std::string& expected_fingerprint) {
  ET_ASSIGN_OR_RETURN(obs::JsonValue root, obs::ParseJson(json));
  ET_RETURN_NOT_OK(CheckHeader(root, "convergence-rep",
                               kConvergenceVersion, expected_fingerprint));
  ConvergenceRepCheckpoint out;
  ET_ASSIGN_OR_RETURN(out.rep, ReadU64Field(root, "rep"));
  ET_ASSIGN_OR_RETURN(out.rep_seed, ReadU64Field(root, "rep_seed"));
  ET_ASSIGN_OR_RETURN(out.degree, ReadNumberField(root, "degree"));
  const obs::JsonValue* rng = root.Find("rng_state");
  if (rng == nullptr || !rng->is_array() ||
      rng->array.size() != out.rng_state.size()) {
    return Malformed("rng_state must be 4 words");
  }
  for (size_t i = 0; i < out.rng_state.size(); ++i) {
    const obs::JsonValue& word = rng->array[i];
    if (!word.is_string()) return Malformed("rng_state word");
    errno = 0;
    char* end = nullptr;
    const unsigned long long v =
        std::strtoull(word.string_value.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') {
      return Malformed("rng_state word: " + word.string_value);
    }
    out.rng_state[i] = static_cast<uint64_t>(v);
  }
  const obs::JsonValue* cells = root.Find("cells");
  if (cells == nullptr || !cells->is_array()) {
    return Malformed("missing cells array");
  }
  for (const obs::JsonValue& c : cells->array) {
    if (!c.is_object()) return Malformed("cell is not an object");
    ConvergenceCellCheckpoint cell;
    ET_ASSIGN_OR_RETURN(cell.policy, ReadStringField(c, "policy"));
    ET_ASSIGN_OR_RETURN(cell.mae_series, ReadDoubleArrayField(c, "mae"));
    ET_ASSIGN_OR_RETURN(cell.f1_series, ReadDoubleArrayField(c, "f1"));
    ET_ASSIGN_OR_RETURN(cell.initial_mae,
                        ReadNumberField(c, "initial_mae"));
    ET_ASSIGN_OR_RETURN(cell.final_mae, ReadNumberField(c, "final_mae"));
    ET_ASSIGN_OR_RETURN(cell.final_f1, ReadNumberField(c, "final_f1"));
    ET_ASSIGN_OR_RETURN(cell.trainer_alpha,
                        ReadDoubleArrayField(c, "trainer_alpha"));
    ET_ASSIGN_OR_RETURN(cell.trainer_beta,
                        ReadDoubleArrayField(c, "trainer_beta"));
    ET_ASSIGN_OR_RETURN(cell.learner_alpha,
                        ReadDoubleArrayField(c, "learner_alpha"));
    ET_ASSIGN_OR_RETURN(cell.learner_beta,
                        ReadDoubleArrayField(c, "learner_beta"));
    out.cells.push_back(std::move(cell));
  }
  return out;
}

std::string EncodeUserStudyScenario(const UserStudyScenarioCheckpoint& sc,
                                    const std::string& fingerprint) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("kind");
  w.String("userstudy-scenario");
  w.Key("version");
  w.Int(kUserStudyVersion);
  w.Key("fingerprint");
  w.String(fingerprint);
  w.Key("scenario_id");
  w.Int(sc.scenario_id);
  w.Key("avg_f1_change");
  WriteMaybeNan(w, sc.avg_f1_change);
  w.Key("scores");
  w.BeginArray();
  for (const auto& s : sc.scores) {
    w.BeginObject();
    w.Key("model");
    w.String(s.model);
    w.Key("mrr");
    WriteMaybeNan(w, s.mrr);
    w.Key("mrr_plus");
    WriteMaybeNan(w, s.mrr_plus);
    WriteU64String(w, "sessions", s.sessions);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Release();
}

Result<UserStudyScenarioCheckpoint> DecodeUserStudyScenario(
    const std::string& json, const std::string& expected_fingerprint) {
  ET_ASSIGN_OR_RETURN(obs::JsonValue root, obs::ParseJson(json));
  ET_RETURN_NOT_OK(CheckHeader(root, "userstudy-scenario",
                               kUserStudyVersion, expected_fingerprint));
  UserStudyScenarioCheckpoint out;
  ET_ASSIGN_OR_RETURN(double id, ReadNumberField(root, "scenario_id"));
  out.scenario_id = static_cast<int>(id);
  ET_ASSIGN_OR_RETURN(out.avg_f1_change,
                      ReadNumberField(root, "avg_f1_change"));
  const obs::JsonValue* scores = root.Find("scores");
  if (scores == nullptr || !scores->is_array()) {
    return Malformed("missing scores array");
  }
  for (const obs::JsonValue& s : scores->array) {
    if (!s.is_object()) return Malformed("score is not an object");
    UserStudyScenarioCheckpoint::PredictorScore score;
    ET_ASSIGN_OR_RETURN(score.model, ReadStringField(s, "model"));
    ET_ASSIGN_OR_RETURN(score.mrr, ReadNumberField(s, "mrr"));
    ET_ASSIGN_OR_RETURN(score.mrr_plus, ReadNumberField(s, "mrr_plus"));
    ET_ASSIGN_OR_RETURN(score.sessions, ReadU64Field(s, "sessions"));
    out.scores.push_back(std::move(score));
  }
  return out;
}

}  // namespace et
