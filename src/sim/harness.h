// The deterministic simulation harness: a whole cluster — shards,
// router, client — wired over SimNet/SimClock and driven through the
// exactly-once annotation workload while faults and whole-process
// disturbances are injected, then checked against three invariants:
//
//   1. Exactly-once ledger. No acked label batch is lost and none is
//      applied twice: every session's final round/label counters must
//      match the client-side ledger (with a one-round tolerance only
//      for a genuinely unresolved outcome-unknown tail).
//   2. Ring-placement consistency. After quiesce, every session that
//      was ever acked is reachable through the router: ShardForSession
//      names a shard and a read-only session.get succeeds there.
//   3. Transcript bit-identity. The final session.get payload of every
//      session is byte-identical to the state an unfaulted reference
//      run produced at the same round — faults may slow a session
//      down, but they may never change what it computed.
//
// A run is fully determined by (options, seed): record mode draws
// every fault from SplitMix64(seed) and returns the schedule it
// injected; replaying that schedule consumes no randomness, which is
// what makes shrinking sound — ShrinkSchedule greedily removes events
// and keeps any subset that still violates, converging on a minimal
// repro a human can read.

#ifndef ET_SIM_HARNESS_H_
#define ET_SIM_HARNESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/result.h"
#include "sim/sim.h"

namespace et {
namespace serve {
class SessionWorldCache;
}  // namespace serve

namespace sim {

struct SimOptions {
  uint64_t seed = 1;
  int shards = 3;
  int sessions = 4;
  int rounds = 6;
  /// Per-transport-op fault probability (record mode).
  double fault_rate = 0.05;
  /// Per-workload-step probability of starting a disturbance (crash or
  /// partition of one shard); an active disturbance ends with
  /// probability 1/4 per step. At most one disturbance at a time.
  double env_rate = 0.02;
  /// Root for the simulated shards' journal directories; empty picks a
  /// per-process temp dir. The reference run and every seed run use
  /// disjoint subdirectories, cleaned before use.
  std::string journal_root;
  /// A run that has not finished inside this much virtual time has
  /// stalled — livelock, lost wakeup, unbounded backoff — and is
  /// reported as a violation (the sweep's liveness check).
  double virtual_budget_ms = 600000.0;
  /// When > 0, the router attaches this retry-after hint to every
  /// kUnavailable it returns — a hostile/buggy server. The client's
  /// backoff clamp must keep the run inside the virtual budget.
  double hostile_retry_hint_ms = 0.0;
  /// Bug reintroductions (sweep demos; see ISSUE/PR description):
  /// blindly resend an outcome-unknown label batch instead of
  /// resyncing via session.get — the double-apply bug the ledger
  /// invariant exists to catch.
  bool bug_blind_resend = false;
  /// Disable the client's retry-after clamp (max backoff 1e15 ms) — a
  /// hostile hint then parks the client past the virtual budget.
  bool bug_unclamped_backoff = false;
  /// Replay mode: inject exactly this schedule instead of drawing from
  /// the seed. Must outlive the call.
  const SimSchedule* schedule = nullptr;
  /// Shared across runs of a sweep so identical session worlds build
  /// once, not once per run. May be null.
  serve::SessionWorldCache* world_cache = nullptr;
};

/// The unfaulted reference: (session index, round) -> the byte-exact
/// session.get response payload at that round. Unfaulted runs consume
/// no randomness, so the reference is seed-independent — compute it
/// once per sweep.
using ReferenceStates = std::map<std::pair<int, int>, std::string>;

struct SimReport {
  bool ok = false;
  /// Human-readable description of the first invariant violation;
  /// empty when ok.
  std::string violation;
  /// The complete fault record of the run (recorded in record mode,
  /// echoed in replay mode) — replaying it reproduces the run.
  SimSchedule schedule;
  /// FNV-1a digest of every session's final state payload: two runs of
  /// the same (options, seed) must report identical digests.
  uint64_t transcript_digest = 0;
  uint64_t transport_ops = 0;
  size_t faults_injected = 0;
  size_t env_events = 0;
  double virtual_ms = 0.0;
};

/// Runs the workload with faults disabled and captures every
/// (session, round) state payload.
Result<ReferenceStates> ComputeReference(const SimOptions& options);

/// One simulated run: build the cluster, drive the workload under
/// faults, quiesce, check the invariants. Never throws; invariant
/// violations land in the report.
SimReport RunSeed(const SimOptions& options, const ReferenceStates& reference);

/// Convenience: computes the reference itself first.
SimReport RunSeed(const SimOptions& options);

/// Greedy event-removal shrink of a violating schedule: returns a
/// (locally) minimal schedule that still violates, with the violation
/// it reproduces in `violation_out`. Errors if `failing` does not
/// reproduce any violation under replay.
Result<SimSchedule> ShrinkSchedule(const SimOptions& options,
                                   const ReferenceStates& reference,
                                   const SimSchedule& failing,
                                   std::string* violation_out);

}  // namespace sim
}  // namespace et

#endif  // ET_SIM_HARNESS_H_
