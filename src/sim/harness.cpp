#include "sim/harness.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/router.h"
#include "common/logging.h"
#include "obs/json.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/session.h"
#include "serve/transport.h"

namespace et {
namespace sim {
namespace {

constexpr char kHost[] = "sim";
constexpr int kRouterPort = 100;
constexpr size_t kPairsPerRound = 3;
/// Distinct stream for environment events so adding a fault draw never
/// shifts which shard crashes (and vice versa).
constexpr uint64_t kEnvSeedSalt = 0x6A09E667F3BCC909ULL;
/// Fixed request id of every audit read, so payloads captured by the
/// reference run and by a faulted run compare byte-for-byte.
constexpr uint64_t kAuditRequestId = 9000;

uint64_t Fnv1a(uint64_t h, const std::string& bytes) {
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string SessionId(int k) { return "sim-" + std::to_string(k); }

std::string MakeRequest(uint64_t id, const std::string& method,
                        const std::string& params) {
  return "{\"id\":" + std::to_string(id) + ",\"method\":\"" + method +
         "\",\"params\":" + params + "}";
}

/// Driver-chosen session ids pin the same session to the same identity
/// across the reference run and every faulted run — the precondition
/// for transcript comparison.
std::string CreateParams(const std::string& session_id, uint64_t seed,
                         int max_rounds) {
  return "{\"session_id\":\"" + session_id +
         "\",\"dataset\":\"omdb\",\"rows\":120,\"max_rounds\":" +
         std::to_string(max_rounds) +
         ",\"pairs_per_round\":" + std::to_string(kPairsPerRound) +
         ",\"seed\":\"" + std::to_string(seed) + "\"}";
}

std::string GetParams(const std::string& session_id) {
  return "{\"session_id\":\"" + session_id + "\"}";
}

/// Labels every pair of `sample` clean (matching the cluster
/// acceptance test's workload).
std::string CleanLabelParams(const std::string& session_id,
                             const obs::JsonValue& sample) {
  std::string labels = "[";
  for (size_t i = 0; i < sample.array.size(); ++i) {
    if (i > 0) labels += ",";
    labels += "[" + std::to_string(int(sample.array[i].array[0].number)) +
              "," + std::to_string(int(sample.array[i].array[1].number)) +
              ",false,false]";
  }
  labels += "]";
  return "{\"session_id\":\"" + session_id +
         "\",\"trainer_top_fd\":0,\"labels\":" + labels + "}";
}

/// True when the call's effect on the server is unknowable from the
/// error alone (connection lost mid-call, deadline) — the resync
/// discipline applies. kUnavailable is excluded by the protocol
/// contract: rejected before any state change.
bool MaybeApplied(const Status& st) {
  return st.IsIOError() || st.IsDeadlineExceeded();
}

struct DrivenSession {
  std::string id;
  obs::JsonValue sample;
  size_t round = 0;   // acked rounds
  size_t labels = 0;  // acked labels
  bool created = false;
  /// An unresolved outcome-unknown create: the session may or may not
  /// exist, but if it does it is at round 0.
  bool maybe_created = false;
  /// Workload gave up on this session during an active disturbance;
  /// invariants still apply to whatever it acked.
  bool stalled = false;
  /// The last unresolved op may have advanced the round by one.
  bool ambiguous = false;
};

/// One simulated cluster plus the workload driver and invariant
/// checkers. Everything — construction order, member declaration order
/// (destruction!), every loop bound — is deterministic.
class World {
 public:
  World(const SimOptions& opts, const std::string& run_dir)
      : opts_(opts),
        run_dir_(run_dir),
        net_(&clock_, opts.seed, opts.schedule != nullptr ? 0.0 : opts.fault_rate),
        env_rng_(opts.seed ^ kEnvSeedSalt) {
    std::error_code ec;
    std::filesystem::remove_all(run_dir_, ec);
    std::filesystem::create_directories(run_dir_, ec);
    if (opts_.schedule != nullptr) {
      replay_ = true;
      net_.UseSchedule(opts_.schedule->faults);
      for (const EnvEvent& e : opts_.schedule->env) {
        env_replay_[e.step].push_back(e);
      }
    }
    crashed_.assign(static_cast<size_t>(opts_.shards), false);
    partitioned_.assign(static_cast<size_t>(opts_.shards), false);
    managers_.resize(static_cast<size_t>(opts_.shards));
    driven_.resize(static_cast<size_t>(opts_.sessions));

    std::vector<cluster::ShardConfig> shards;
    for (int i = 0; i < opts_.shards; ++i) {
      StartShard(i, /*revive=*/false);
      cluster::ShardConfig cfg;
      cfg.name = "shard-" + std::to_string(i);
      cfg.host = kHost;
      cfg.port = ShardPort(i);
      cfg.journal_dir = ShardDir(i);
      shards.push_back(std::move(cfg));
    }

    cluster::RouterOptions ro;
    ro.shards = std::move(shards);
    ro.transport = net_.transport();
    ro.clock = &clock_;
    ro.background = false;  // probes run from the virtual-clock timer
    ro.enable_failover = true;
    ro.retry_after_ms =
        opts_.hostile_retry_hint_ms > 0.0 ? opts_.hostile_retry_hint_ms : 5.0;
    ro.connect_timeout_ms = 100;
    ro.call_timeout_ms = 1000;
    ro.probe_timeout_ms = 100;
    ro.pool_size = 2;
    ro.health.probe_interval_ms = 25;
    ro.health.down_after = 2;
    Result<std::unique_ptr<cluster::Router>> router = cluster::Router::Start(ro);
    if (!router.ok()) {
      violation_ = "harness: router start failed: " + router.status().ToString();
      return;
    }
    router_ = std::move(*router);
    net_.Listen(kHost, kRouterPort, router_.get());
    probe_timer_ = clock_.AddPeriodicTimer(25.0, [this] {
      // Past the liveness budget the run is already condemned; keep
      // the (possibly enormous) remaining advance cheap.
      if (clock_.ElapsedMillis() > opts_.virtual_budget_ms) return;
      router_->health().ProbeOnce();
    });

    serve::ClientOptions co;
    co.max_unavailable_retries = 4000;
    co.min_retry_backoff_ms = 1.0;
    co.max_retry_backoff_ms = opts_.bug_unclamped_backoff ? 1e15 : 2000.0;
    co.reconnect_deadline_ms = 10000.0;
    co.transport = net_.transport();
    co.clock = &clock_;
    Result<std::unique_ptr<serve::Client>> client =
        serve::Client::Connect(kHost, kRouterPort, co);
    if (!client.ok()) {
      violation_ =
          "harness: client connect failed: " + client.status().ToString();
      return;
    }
    client_ = std::move(*client);
  }

  ~World() {
    if (probe_timer_ != 0) clock_.RemoveTimer(probe_timer_);
    if (router_ != nullptr) router_->Stop();
  }

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Unfaulted run that captures every (session, round) state payload.
  Status RunReference(ReferenceStates* out) {
    capture_ = out;
    if (violation_.empty()) Drive();
    if (!violation_.empty()) {
      return Status::Internal("reference run failed: " + violation_);
    }
    return Status::OK();
  }

  SimReport Run(const ReferenceStates& reference) {
    SimReport report;
    if (violation_.empty()) Drive();
    if (violation_.empty()) Quiesce();
    if (violation_.empty()) FinalChecks(reference, &report);
    report.ok = violation_.empty();
    report.violation = violation_;
    if (replay_) {
      report.schedule = *opts_.schedule;
    } else {
      report.schedule.faults = net_.recorded();
      report.schedule.env = env_recorded_;
    }
    report.transport_ops = net_.op_count();
    report.faults_injected = net_.faults_injected();
    report.env_events = env_applied_;
    report.virtual_ms = clock_.ElapsedMillis();
    return report;
  }

 private:
  int ShardPort(int i) const { return 1 + i; }
  std::string ShardDir(int i) const {
    return run_dir_ + "/shard-" + std::to_string(i);
  }

  void StartShard(int i, bool revive) {
    serve::SessionManagerOptions mo;
    mo.journal_dir = ShardDir(i);
    mo.journal_sync_ms = 0.0;  // inline fsync: no syncer thread
    mo.journal_snapshot_every = 4;
    mo.retry_after_ms = 5.0;
    mo.shared_world_cache = opts_.world_cache;
    std::error_code ec;
    std::filesystem::create_directories(mo.journal_dir, ec);
    auto manager = std::make_unique<serve::SessionManager>(mo);
    manager->RecoverFromJournals();
    if (revive) {
      net_.Revive(kHost, ShardPort(i), manager.get());
    } else {
      net_.Listen(kHost, ShardPort(i), manager.get());
    }
    managers_[static_cast<size_t>(i)] = std::move(manager);
  }

  bool DisturbanceActive() const {
    for (int i = 0; i < opts_.shards; ++i) {
      if (crashed_[static_cast<size_t>(i)] ||
          partitioned_[static_cast<size_t>(i)]) {
        return true;
      }
    }
    return false;
  }

  int ActiveDisturbedShard() const {
    for (int i = 0; i < opts_.shards; ++i) {
      if (crashed_[static_cast<size_t>(i)] ||
          partitioned_[static_cast<size_t>(i)]) {
        return i;
      }
    }
    return -1;
  }

  bool BudgetExceeded() {
    if (!violation_.empty()) return true;
    if (clock_.ElapsedMillis() <= opts_.virtual_budget_ms) return false;
    violation_ = "liveness: virtual time budget exceeded (" +
                 std::to_string(clock_.ElapsedMillis()) + " ms > " +
                 std::to_string(opts_.virtual_budget_ms) +
                 " ms budget) — stalled workload, livelock, or unbounded "
                 "backoff";
    return true;
  }

  void ApplyEnv(const EnvEvent& e) {
    // Inapplicable events no-op gracefully: shrinking may remove the
    // crash an orphaned restart referred to.
    if (e.shard < 0 || e.shard >= opts_.shards) return;
    const size_t i = static_cast<size_t>(e.shard);
    switch (e.kind) {
      case EnvKind::kCrash:
        if (crashed_[i] || partitioned_[i]) return;
        net_.Kill(kHost, ShardPort(e.shard));
        managers_[i].reset();  // process death: in-memory state gone
        crashed_[i] = true;
        break;
      case EnvKind::kRestart:
        if (!crashed_[i]) return;
        StartShard(e.shard, /*revive=*/true);
        crashed_[i] = false;
        break;
      case EnvKind::kPartition:
        if (crashed_[i] || partitioned_[i]) return;
        net_.SetPartitioned(kHost, ShardPort(e.shard), true);
        partitioned_[i] = true;
        break;
      case EnvKind::kHeal:
        if (!partitioned_[i]) return;
        net_.SetPartitioned(kHost, ShardPort(e.shard), false);
        partitioned_[i] = false;
        break;
    }
    ++env_applied_;
  }

  /// One workload step boundary: replay (or draw) environment events.
  /// At most one disturbance at a time; an active one ends with
  /// probability 1/4 per step.
  void EnvStep() {
    ++step_;
    if (replay_) {
      auto it = env_replay_.find(step_);
      if (it != env_replay_.end()) {
        for (const EnvEvent& e : it->second) ApplyEnv(e);
      }
      return;
    }
    if (opts_.env_rate <= 0.0) return;
    const int active = ActiveDisturbedShard();
    if (active >= 0) {
      if (env_rng_.NextDouble() < 0.25) {
        EnvEvent e;
        e.step = step_;
        e.shard = active;
        e.kind = crashed_[static_cast<size_t>(active)] ? EnvKind::kRestart
                                                       : EnvKind::kHeal;
        env_recorded_.push_back(e);
        ApplyEnv(e);
      }
      return;
    }
    if (env_rng_.NextDouble() < opts_.env_rate) {
      EnvEvent e;
      e.step = step_;
      e.shard =
          static_cast<int>(env_rng_.NextBelow(static_cast<uint64_t>(opts_.shards)));
      e.kind =
          env_rng_.NextDouble() < 0.5 ? EnvKind::kCrash : EnvKind::kPartition;
      env_recorded_.push_back(e);
      ApplyEnv(e);
    }
  }

  /// Out-of-band state read: a raw session.get with a fixed request id
  /// on a fresh connection, in audit mode (no fault draws, no op
  /// counting) so observing a run never perturbs it.
  Result<std::string> AuditGet(const std::string& id) {
    net_.set_audit(true);
    Result<std::string> payload = AuditGetInner(id);
    net_.set_audit(false);
    return payload;
  }

  Result<std::string> AuditGetInner(const std::string& id) {
    serve::DialOptions dial;
    dial.connect_timeout_ms = 1000;
    dial.io_timeout_ms = 1000;
    Result<std::unique_ptr<serve::Connection>> conn =
        net_.transport()->Dial(kHost, kRouterPort, dial);
    if (!conn.ok()) return conn.status();
    const std::string frame = serve::EncodeFrame(
        MakeRequest(kAuditRequestId, "session.get", GetParams(id)));
    size_t sent = 0;
    const Status st = (*conn)->SendAll(frame, &sent);
    if (!st.ok()) return st;
    std::string payload;
    const Status recv_st =
        serve::RecvOneFrame(conn->get(), serve::kDefaultMaxFrameBytes, &payload);
    if (!recv_st.ok()) return recv_st;
    return payload;
  }

  void CaptureState(int k, int round) {
    if (capture_ == nullptr) return;
    Result<std::string> payload = AuditGet(driven_[static_cast<size_t>(k)].id);
    if (!payload.ok()) {
      violation_ = "harness: reference capture failed for " +
                   driven_[static_cast<size_t>(k)].id + ": " +
                   payload.status().ToString();
      return;
    }
    (*capture_)[{k, round}] = std::move(*payload);
  }

  /// Create with the exactly-once discipline: an outcome-unknown (or
  /// already-exists) create is resolved through read-only session.get —
  /// NotFound proves it never applied (safe to resend), success adopts
  /// the existing round-0 session.
  void CreateSession(int k) {
    DrivenSession& s = driven_[static_cast<size_t>(k)];
    s.id = SessionId(k);
    const std::string params = CreateParams(
        s.id, 1000 + 137 * static_cast<uint64_t>(k), opts_.rounds + 2);
    const std::string get_params = GetParams(s.id);
    for (int attempt = 0; attempt < 64; ++attempt) {
      if (BudgetExceeded()) return;
      Result<obs::JsonValue> r = client_->Call("session.create", params);
      bool resync = false;
      if (r.ok()) {
        const obs::JsonValue* sample = r->Find("sample");
        if (sample == nullptr) {
          violation_ = "harness: create response missing sample for " + s.id;
          return;
        }
        s.sample = *sample;
        s.created = true;
        s.maybe_created = false;
      } else if (MaybeApplied(r.status())) {
        s.maybe_created = true;
        resync = true;
      } else if (r.status().code() == StatusCode::kAlreadyExists) {
        resync = true;  // an earlier unknown-outcome attempt landed
      } else {
        if (DisturbanceActive()) {
          s.stalled = true;
          return;
        }
        violation_ = "liveness: create " + s.id +
                     " failed with no disturbance active: " +
                     r.status().ToString();
        return;
      }
      if (resync) {
        bool exists = false;
        bool resolved = false;
        for (int g = 0; g < 64 && !resolved; ++g) {
          if (BudgetExceeded()) return;
          Result<obs::JsonValue> got = client_->Call("session.get", get_params);
          if (got.ok()) {
            const obs::JsonValue* round_v = got->Find("round");
            const obs::JsonValue* sample = got->Find("sample");
            if (round_v == nullptr || sample == nullptr) {
              violation_ = "harness: get response missing fields for " + s.id;
              return;
            }
            if (static_cast<size_t>(round_v->number) != 0) {
              violation_ = "exactly-once: " + s.id +
                           " exists at nonzero round right after create";
              return;
            }
            s.sample = *sample;
            s.created = true;
            s.maybe_created = false;
            exists = true;
            resolved = true;
          } else if (got.status().IsNotFound()) {
            s.maybe_created = false;  // provably never applied
            resolved = true;
          } else if (MaybeApplied(got.status())) {
            continue;  // read-only: retry freely
          } else {
            if (DisturbanceActive()) {
              s.stalled = true;
              return;
            }
            violation_ = "liveness: create-resync " + s.id +
                         " failed with no disturbance active: " +
                         got.status().ToString();
            return;
          }
        }
        if (!resolved) {
          if (DisturbanceActive()) {
            s.stalled = true;
            return;
          }
          violation_ = "liveness: create " + s.id +
                       " never resolved with no disturbance active";
          return;
        }
        if (!exists) continue;  // proven unapplied: resend the create
      }
      if (s.created) {
        CaptureState(k, 0);
        return;
      }
    }
    if (DisturbanceActive()) {
      s.stalled = true;
      return;
    }
    violation_ = "liveness: create " + s.id +
                 " did not complete in 64 attempts with no disturbance active";
  }

  /// One label round with the resync-via-session.get discipline (the
  /// exactly-once ledger): an outcome-unknown label is never blindly
  /// resent — unless bug_blind_resend reintroduces exactly that bug.
  void PlayRoundSim(int k) {
    DrivenSession& s = driven_[static_cast<size_t>(k)];
    const std::string label_params = CleanLabelParams(s.id, s.sample);
    const std::string get_params = GetParams(s.id);
    obs::JsonValue reply;
    bool recovered = false;
    bool acked = false;
    for (int attempt = 0; attempt < 64 && !acked; ++attempt) {
      if (BudgetExceeded()) return;
      Result<obs::JsonValue> r = client_->Call("session.label", label_params);
      if (r.ok()) {
        reply = std::move(*r);
        recovered = false;
        acked = true;
        break;
      }
      if (MaybeApplied(r.status())) {
        s.ambiguous = true;
        if (opts_.bug_blind_resend) continue;  // the double-apply bug
        bool resolved = false;
        for (int g = 0; g < 64 && !resolved; ++g) {
          if (BudgetExceeded()) return;
          Result<obs::JsonValue> got = client_->Call("session.get", get_params);
          if (got.ok()) {
            const obs::JsonValue* at_v = got->Find("round");
            if (at_v == nullptr) {
              violation_ = "harness: get response missing round for " + s.id;
              return;
            }
            const size_t at = static_cast<size_t>(at_v->number);
            if (at == s.round + 1) {
              recovered = true;
              reply = std::move(*got);
              acked = true;
            } else if (at != s.round) {
              violation_ = "exactly-once: " + s.id + " at server round " +
                           std::to_string(at) + ", client acked " +
                           std::to_string(s.round) +
                           " (state lost or duplicated; routed to " +
                           router_->ShardForSession(s.id) + ")";
              return;
            }
            s.ambiguous = false;
            resolved = true;
          } else if (MaybeApplied(got.status())) {
            continue;
          } else {
            if (DisturbanceActive()) {
              s.stalled = true;
              return;
            }
            violation_ = "liveness: resync " + s.id +
                         " failed with no disturbance active: " +
                         got.status().ToString();
            return;
          }
        }
        if (!resolved) {
          if (DisturbanceActive()) {
            s.stalled = true;
            return;
          }
          violation_ = "liveness: resync " + s.id +
                       " never resolved with no disturbance active";
          return;
        }
        continue;  // at == round: proven unapplied, resend
      }
      // Provably-unapplied hard failure (e.g. kUnavailable retries
      // exhausted).
      if (DisturbanceActive()) {
        s.stalled = true;
        return;
      }
      violation_ = "liveness: label " + s.id +
                   " failed with no disturbance active: " +
                   r.status().ToString();
      return;
    }
    if (!acked) {
      if (DisturbanceActive()) {
        s.stalled = true;
        return;
      }
      violation_ = "liveness: label " + s.id +
                   " not acked in 64 attempts with no disturbance active";
      return;
    }
    ++s.round;
    s.labels += kPairsPerRound;
    s.ambiguous = false;
    const obs::JsonValue* round_v = reply.Find("round");
    const obs::JsonValue* labels_v = reply.Find("labels_total");
    if (round_v == nullptr ||
        static_cast<size_t>(round_v->number) != s.round) {
      violation_ = "exactly-once: " + s.id + ": round lost or duplicated";
      return;
    }
    if (labels_v == nullptr ||
        static_cast<size_t>(labels_v->number) != s.labels) {
      violation_ =
          "exactly-once: " + s.id + ": label batch lost or double-applied";
      return;
    }
    const obs::JsonValue* next = reply.Find(recovered ? "sample" : "next");
    if (next == nullptr) {
      violation_ = "harness: label response missing next sample for " + s.id;
      return;
    }
    s.sample = *next;
    ET_LOG(Debug) << "sim: " << s.id << " acked round " << s.round
                  << (recovered ? " (recovered via resync)" : "")
                  << " on " << router_->ShardForSession(s.id);
    CaptureState(k, static_cast<int>(s.round));
  }

  void Drive() {
    for (int k = 0; k < opts_.sessions; ++k) {
      EnvStep();
      CreateSession(k);
      if (!violation_.empty() || BudgetExceeded()) return;
    }
    for (int r = 0; r < opts_.rounds; ++r) {
      for (int k = 0; k < opts_.sessions; ++k) {
        DrivenSession& s = driven_[static_cast<size_t>(k)];
        if (!s.created || s.stalled) continue;
        EnvStep();
        PlayRoundSim(k);
        if (!violation_.empty() || BudgetExceeded()) return;
      }
    }
  }

  /// End-of-run repair: stop faults, heal partitions, restart crashed
  /// shards, and give the health probes time to re-admit everyone —
  /// the invariants are then checked against a fully-connected
  /// cluster, so a shrunk schedule missing its heal/restart tail still
  /// converges.
  void Quiesce() {
    net_.StopFaults();
    for (int i = 0; i < opts_.shards; ++i) {
      const size_t idx = static_cast<size_t>(i);
      if (partitioned_[idx]) {
        net_.SetPartitioned(kHost, ShardPort(i), false);
        partitioned_[idx] = false;
      }
      if (crashed_[idx]) {
        StartShard(i, /*revive=*/true);
        crashed_[idx] = false;
      }
    }
    clock_.AdvanceMillis(2000.0);  // ~80 probe rounds: detect + readmit
  }

  void FinalChecks(const ReferenceStates& reference, SimReport* report) {
    uint64_t digest = 14695981039346656037ULL;
    for (int k = 0; k < opts_.sessions; ++k) {
      DrivenSession& s = driven_[static_cast<size_t>(k)];
      if (s.id.empty()) s.id = SessionId(k);  // budget hit before create

      // Invariant: ring-placement consistency. Every session routes to
      // a live shard and a read through the router resolves.
      const std::string shard = router_->ShardForSession(s.id);
      if (shard.empty()) {
        violation_ = "ring placement: no healthy shard for " + s.id;
        return;
      }
      Result<std::string> payload = AuditGet(s.id);
      if (!payload.ok()) {
        violation_ = "ring placement: audit read of " + s.id +
                     " failed after quiesce: " + payload.status().ToString();
        return;
      }
      Result<serve::Response> resp = serve::ParseResponse(*payload);
      if (!resp.ok()) {
        violation_ = "harness: audit response unparsable for " + s.id + ": " +
                     resp.status().ToString();
        return;
      }
      if (!resp->ok) {
        if (resp->code == StatusCode::kNotFound && !s.created) {
          // Provably-unapplied (or unresolved) create: absence is the
          // consistent outcome.
          digest = Fnv1a(digest, s.id + ":absent");
          continue;
        }
        violation_ = (s.created ? "exactly-once: acked session lost: "
                                : "ring placement: audit read failed: ") +
                     s.id + " -> " + resp->message;
        return;
      }

      // Invariant: exactly-once ledger.
      const obs::JsonValue* round_v = resp->result.Find("round");
      const obs::JsonValue* labels_v = resp->result.Find("labels_total");
      if (round_v == nullptr || labels_v == nullptr) {
        violation_ = "harness: audit response missing fields for " + s.id;
        return;
      }
      const size_t server_round = static_cast<size_t>(round_v->number);
      const size_t server_labels = static_cast<size_t>(labels_v->number);
      size_t lo = s.round;
      size_t hi = s.round + (s.ambiguous ? 1 : 0);
      if (!s.created) {
        lo = 0;  // unresolved create that landed: round 0
        hi = 0;
      }
      if (server_round < lo || server_round > hi) {
        violation_ = "exactly-once: " + s.id + " at server round " +
                     std::to_string(server_round) + ", client acked " +
                     std::to_string(s.round) +
                     (s.ambiguous ? " (+1 ambiguous)" : "") +
                     " — state lost or duplicated (routed to " + shard +
                     ")";
        return;
      }
      if (server_labels != server_round * kPairsPerRound) {
        violation_ = "exactly-once: " + s.id + " labels_total " +
                     std::to_string(server_labels) + " != " +
                     std::to_string(kPairsPerRound) + " * round " +
                     std::to_string(server_round);
        return;
      }

      // Invariant: transcript bit-identity against the unfaulted
      // reference at the same round.
      auto it = reference.find({k, static_cast<int>(server_round)});
      if (it == reference.end()) {
        violation_ = "harness: no reference state for (" + std::to_string(k) +
                     ", " + std::to_string(server_round) + ")";
        return;
      }
      if (*payload != it->second) {
        violation_ = "transcript divergence: " + s.id + " at round " +
                     std::to_string(server_round) +
                     " differs byte-wise from the unfaulted reference";
        return;
      }
      digest = Fnv1a(digest, *payload);
    }
    report->transcript_digest = digest;
  }

  const SimOptions opts_;
  const std::string run_dir_;

  // Declaration order is destruction order in reverse: the client and
  // router die before the managers and the net.
  SimClock clock_;
  SimNet net_;
  SplitMix64 env_rng_;
  std::vector<std::unique_ptr<serve::SessionManager>> managers_;
  std::unique_ptr<cluster::Router> router_;
  std::unique_ptr<serve::Client> client_;

  bool replay_ = false;
  std::unordered_map<uint64_t, std::vector<EnvEvent>> env_replay_;
  std::vector<EnvEvent> env_recorded_;
  std::vector<bool> crashed_;
  std::vector<bool> partitioned_;
  std::vector<DrivenSession> driven_;
  uint64_t step_ = 0;
  size_t env_applied_ = 0;
  int probe_timer_ = 0;
  ReferenceStates* capture_ = nullptr;
  std::string violation_;
};

std::string RootDir(const SimOptions& options) {
  if (!options.journal_root.empty()) return options.journal_root;
  return (std::filesystem::temp_directory_path() /
          ("et_sim_" + std::to_string(getpid())))
      .string();
}

}  // namespace

Result<ReferenceStates> ComputeReference(const SimOptions& options) {
  SimOptions clean = options;
  clean.fault_rate = 0.0;
  clean.env_rate = 0.0;
  clean.schedule = nullptr;
  clean.hostile_retry_hint_ms = 0.0;
  clean.bug_blind_resend = false;
  clean.bug_unclamped_backoff = false;
  ReferenceStates reference;
  World world(clean, RootDir(options) + "/ref");
  const Status st = world.RunReference(&reference);
  if (!st.ok()) return st;
  return reference;
}

SimReport RunSeed(const SimOptions& options,
                  const ReferenceStates& reference) {
  World world(options, RootDir(options) + "/run");
  return world.Run(reference);
}

SimReport RunSeed(const SimOptions& options) {
  Result<ReferenceStates> reference = ComputeReference(options);
  if (!reference.ok()) {
    SimReport report;
    report.violation =
        "harness: reference run failed: " + reference.status().ToString();
    return report;
  }
  return RunSeed(options, *reference);
}

Result<SimSchedule> ShrinkSchedule(const SimOptions& options,
                                   const ReferenceStates& reference,
                                   const SimSchedule& failing,
                                   std::string* violation_out) {
  int runs = 0;
  constexpr int kMaxRuns = 400;
  auto violates = [&](const SimSchedule& schedule, std::string* violation) {
    SimOptions o = options;
    o.schedule = &schedule;
    const SimReport report = RunSeed(o, reference);
    ++runs;
    *violation = report.violation;
    return !report.ok;
  };

  std::string violation;
  if (!violates(failing, &violation)) {
    return Status::FailedPrecondition(
        "schedule does not reproduce a violation under replay");
  }
  SimSchedule current = failing;
  if (violation_out != nullptr) *violation_out = violation;

  // Greedy chunked removal, largest chunks first (so "remove ALL
  // faults" / "remove ALL env events" is tried immediately), then
  // singles. Each accepted removal keeps the violation alive.
  for (size_t chunk = current.faults.size(); chunk >= 1; chunk /= 2) {
    for (size_t i = 0; i < current.faults.size() && runs < kMaxRuns;) {
      SimSchedule trial = current;
      const size_t n = std::min(chunk, trial.faults.size() - i);
      trial.faults.erase(trial.faults.begin() + static_cast<long>(i),
                         trial.faults.begin() + static_cast<long>(i + n));
      if (violates(trial, &violation)) {
        current = std::move(trial);
        if (violation_out != nullptr) *violation_out = violation;
      } else {
        i += n;
      }
    }
    if (chunk == 1) break;
  }
  for (size_t chunk = current.env.size(); chunk >= 1; chunk /= 2) {
    for (size_t i = 0; i < current.env.size() && runs < kMaxRuns;) {
      SimSchedule trial = current;
      const size_t n = std::min(chunk, trial.env.size() - i);
      trial.env.erase(trial.env.begin() + static_cast<long>(i),
                      trial.env.begin() + static_cast<long>(i + n));
      if (violates(trial, &violation)) {
        current = std::move(trial);
        if (violation_out != nullptr) *violation_out = violation;
      } else {
        i += n;
      }
    }
    if (chunk == 1) break;
  }
  return current;
}

}  // namespace sim
}  // namespace et
