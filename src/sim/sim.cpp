#include "sim/sim.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "serve/protocol.h"

namespace et {
namespace sim {

// ---------------------------------------------------------------------------
// SimClock

void SimClock::AdvanceMillis(double ms) {
  if (ms <= 0.0) return;
  const uint64_t target = mono_ns_ + static_cast<uint64_t>(ms * 1e6);
  if (firing_) {
    // Nested advance from inside a timer callback: just move time.
    // Re-firing here could recurse unboundedly (a probe that sleeps
    // longer than its own period); the skipped firings run on the next
    // top-level advance instead.
    mono_ns_ = std::max(mono_ns_, target);
    return;
  }
  // A pathological advance (an unclamped multi-year backoff — exactly
  // the bug class the sim exists to catch) must not fire a 25ms probe
  // timer 10^8 times: each timer fires at most kMaxFiresPerAdvance
  // times per top-level advance, then skips past the target.
  constexpr int kMaxFiresPerAdvance = 100;
  std::unordered_map<int, int> fires;
  for (;;) {
    Timer* due = nullptr;
    for (Timer& t : timers_) {
      if (t.dead || t.next_ns > target) continue;
      if (due == nullptr || t.next_ns < due->next_ns ||
          (t.next_ns == due->next_ns && t.id < due->id)) {
        due = &t;
      }
    }
    if (due == nullptr) break;
    if (++fires[due->id] > kMaxFiresPerAdvance) {
      due->next_ns = target + due->period_ns;
      continue;
    }
    mono_ns_ = std::max(mono_ns_, due->next_ns);
    const int fired_id = due->id;
    firing_ = true;
    due->fn();  // may re-enter AdvanceMillis; guarded above
    firing_ = false;
    // The callback may have registered timers (reallocating timers_);
    // re-find the fired one before touching it again.
    for (Timer& t : timers_) {
      if (t.id != fired_id) continue;
      // Fixed-delay rescheduling — what a sleep-loop prober does: the
      // next firing is one period after the callback FINISHED. A
      // callback that itself advances time (a health probe waiting out
      // a connect timeout against a partitioned peer) must not leave a
      // backlog of missed periods, or probing would cascade and race
      // virtual time away from the workload.
      t.next_ns = mono_ns_ + t.period_ns;
      break;
    }
  }
  mono_ns_ = std::max(mono_ns_, target);
  timers_.erase(std::remove_if(timers_.begin(), timers_.end(),
                               [](const Timer& t) { return t.dead; }),
                timers_.end());
}

int SimClock::AddPeriodicTimer(double period_ms, std::function<void()> fn) {
  Timer timer;
  timer.id = next_timer_id_++;
  timer.period_ns = static_cast<uint64_t>(std::max(period_ms, 0.001) * 1e6);
  timer.next_ns = mono_ns_ + timer.period_ns;
  timer.fn = std::move(fn);
  timers_.push_back(std::move(timer));
  return timers_.back().id;
}

void SimClock::RemoveTimer(int id) {
  for (Timer& t : timers_) {
    if (t.id == id) t.dead = true;  // reaped by the next advance
  }
}

// ---------------------------------------------------------------------------
// Schedule serialization

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDialFail:
      return "dial_fail";
    case FaultKind::kSendZero:
      return "send_zero";
    case FaultKind::kSendPartial:
      return "send_partial";
    case FaultKind::kDropRequest:
      return "drop_request";
    case FaultKind::kDropResponse:
      return "drop_response";
    case FaultKind::kDupResponse:
      return "dup_response";
    case FaultKind::kDelay:
      return "delay";
  }
  return "none";
}

const char* EnvKindName(EnvKind kind) {
  switch (kind) {
    case EnvKind::kCrash:
      return "crash";
    case EnvKind::kRestart:
      return "restart";
    case EnvKind::kPartition:
      return "partition";
    case EnvKind::kHeal:
      return "heal";
  }
  return "crash";
}

namespace {

Result<FaultKind> ParseFaultKind(const std::string& name) {
  for (const FaultKind kind :
       {FaultKind::kNone, FaultKind::kDialFail, FaultKind::kSendZero,
        FaultKind::kSendPartial, FaultKind::kDropRequest,
        FaultKind::kDropResponse, FaultKind::kDupResponse,
        FaultKind::kDelay}) {
    if (name == FaultKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown fault kind '" + name + "'");
}

Result<EnvKind> ParseEnvKind(const std::string& name) {
  for (const EnvKind kind : {EnvKind::kCrash, EnvKind::kRestart,
                             EnvKind::kPartition, EnvKind::kHeal}) {
    if (name == EnvKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown env kind '" + name + "'");
}

}  // namespace

std::string SimSchedule::Serialize() const {
  std::ostringstream out;
  for (const FaultEvent& f : faults) {
    out << "fault " << f.op_index << " " << FaultKindName(f.kind);
    if (f.kind == FaultKind::kDelay) out << " " << f.delay_ms;
    out << "\n";
  }
  for (const EnvEvent& e : env) {
    out << "env " << e.step << " " << EnvKindName(e.kind) << " " << e.shard
        << "\n";
  }
  return out.str();
}

Result<SimSchedule> SimSchedule::Parse(const std::string& text) {
  SimSchedule schedule;
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    const std::string where = " (line " + std::to_string(lineno) + ")";
    if (tag == "fault") {
      FaultEvent event;
      std::string kind;
      if (!(fields >> event.op_index >> kind)) {
        return Status::InvalidArgument("malformed fault line" + where);
      }
      ET_ASSIGN_OR_RETURN(event.kind, ParseFaultKind(kind));
      if (event.kind == FaultKind::kDelay && !(fields >> event.delay_ms)) {
        return Status::InvalidArgument("delay fault missing delay_ms" +
                                       where);
      }
      schedule.faults.push_back(event);
    } else if (tag == "env") {
      EnvEvent event;
      std::string kind;
      if (!(fields >> event.step >> kind >> event.shard)) {
        return Status::InvalidArgument("malformed env line" + where);
      }
      ET_ASSIGN_OR_RETURN(event.kind, ParseEnvKind(kind));
      schedule.env.push_back(event);
    } else {
      return Status::InvalidArgument("unknown schedule tag '" + tag + "'" +
                                     where);
    }
  }
  return schedule;
}

// ---------------------------------------------------------------------------
// SimConnection / SimTransport
//
// Namespace scope (not anonymous) so SimNet's friend declarations
// grant them access to the endpoint registry and the fault stream.

/// A dialed stream bound to the epoch of the peer it connected to. The
/// peer's handler is re-resolved through SimNet at every use, so a
/// crash between calls is observed (EOF / no dispatch), never a
/// dangling pointer.
class SimConnection : public serve::Connection {
 public:
  SimConnection(SimNet* net, SimClock* clock, std::string host, int port,
                uint64_t epoch, int io_timeout_ms)
      : net_(net),
        clock_(clock),
        host_(std::move(host)),
        port_(port),
        epoch_(epoch),
        io_timeout_ms_(io_timeout_ms) {}

  Status SendAll(const std::string& data, size_t* sent) override;
  Result<size_t> Recv(char* buf, size_t cap) override;

 private:
  /// Runs completed request frames through the peer's handler
  /// (admission included, mirroring the real front end) and queues the
  /// framed response per `fault`.
  void Dispatch(const std::string& data, FaultKind fault);

  SimNet* net_;
  SimClock* clock_;
  std::string host_;
  int port_;
  uint64_t epoch_;
  int io_timeout_ms_;
  serve::FrameParser peer_parser_;
  std::string rx_;
  bool broken_ = false;
};

class SimTransport : public serve::Transport {
 public:
  SimTransport(SimNet* net, SimClock* clock) : net_(net), clock_(clock) {}

  Result<std::unique_ptr<serve::Connection>> Dial(
      const std::string& host, int port,
      const serve::DialOptions& options) override {
    const std::string peer = host + ":" + std::to_string(port);
    double delay_ms = 0.0;
    const FaultKind fault = net_->DrawFault(/*dial_site=*/true, &delay_ms);
    if (fault == FaultKind::kDelay) clock_->AdvanceMillis(delay_ms);
    if (fault == FaultKind::kDialFail) {
      return Status::IOError("sim: injected dial failure to " + peer);
    }
    SimNet::Endpoint* ep = net_->Find(host, port);
    if (ep == nullptr || !ep->alive) {
      return Status::IOError("sim: connect " + peer +
                             ": connection refused");
    }
    if (ep->partitioned) {
      // A real connect would block until the timeout; model the wait.
      clock_->AdvanceMillis(options.connect_timeout_ms > 0
                                ? options.connect_timeout_ms
                                : 1000.0);
      return Status::IOError("sim: connect " + peer + ": timed out");
    }
    return std::unique_ptr<serve::Connection>(
        new SimConnection(net_, clock_, host, port, ep->epoch,
                          options.io_timeout_ms));
  }

 private:
  SimNet* net_;
  SimClock* clock_;
};

Status SimConnection::SendAll(const std::string& data, size_t* sent) {
  *sent = 0;
  const std::string peer = host_ + ":" + std::to_string(port_);
  if (broken_) {
    return Status::IOError("sim: send on broken connection to " + peer);
  }
  // A send to a dead or partitioned peer "succeeds" locally — the
  // kernel buffers it — and the loss is observed at Recv (EOF for a
  // dead peer, timeout for a partition). This is the TCP behavior the
  // callers' "outcome unknown" discipline is built for.
  if (net_->Peer(host_, port_, epoch_) != SimNet::PeerState::kOk) {
    *sent = data.size();
    broken_ = true;
    return Status::OK();
  }
  double delay_ms = 0.0;
  const FaultKind fault = net_->DrawFault(/*dial_site=*/false, &delay_ms);
  switch (fault) {
    case FaultKind::kSendZero:
      return Status::IOError("sim: injected send failure to " + peer +
                             " (no bytes written)");
    case FaultKind::kSendPartial:
      *sent = std::max<size_t>(1, data.size() / 2);
      if (*sent >= data.size()) *sent = data.size() - 1;
      broken_ = true;
      return Status::IOError("sim: injected connection loss mid-frame to " +
                             peer);
    case FaultKind::kDropRequest:
      *sent = data.size();
      broken_ = true;
      return Status::OK();
    case FaultKind::kDelay:
      clock_->AdvanceMillis(delay_ms);
      break;
    default:
      break;
  }
  *sent = data.size();
  Dispatch(data, fault);
  return Status::OK();
}

void SimConnection::Dispatch(const std::string& data, FaultKind fault) {
  std::vector<std::string> payloads;
  if (!peer_parser_.Feed(data.data(), data.size(), &payloads).ok()) {
    broken_ = true;  // protocol garbage: the peer drops the connection
    return;
  }
  for (const std::string& payload : payloads) {
    serve::RequestHandler* handler = net_->Handler(host_, port_, epoch_);
    if (handler == nullptr) {  // peer died between frames
      broken_ = true;
      return;
    }
    uint64_t id = 0;
    Result<serve::Request> request = serve::ParseRequest(payload);
    if (request.ok()) id = request->id;
    std::string response;
    if (!handler->TryBeginRequest()) {
      response = serve::ErrorResponse(
          id, Status::Unavailable("server overloaded"),
          handler->retry_after_ms());
    } else {
      serve::RequestInfo info;
      response = handler->Handle(payload, &info);
      handler->EndRequest();
    }
    const std::string frame = serve::EncodeFrame(response);
    switch (fault) {
      case FaultKind::kDropResponse:
        // The request WAS applied; only the ack is lost. The client
        // must resync, never blindly resend.
        broken_ = true;
        break;
      case FaultKind::kDupResponse:
        // Delivered twice, then the connection dies. Breaking it keeps
        // the strict request/response lockstep of pooled connections
        // intact (a live connection with a stale buffered frame would
        // desync every later request on it); the duplicate surfaces as
        // a stale-id frame the reader must skip.
        rx_ += frame;
        rx_ += frame;
        broken_ = true;
        break;
      default:
        rx_ += frame;
        break;
    }
  }
}

Result<size_t> SimConnection::Recv(char* buf, size_t cap) {
  if (!rx_.empty()) {
    const size_t n = std::min(cap, rx_.size());
    std::copy(rx_.begin(), rx_.begin() + static_cast<ptrdiff_t>(n), buf);
    rx_.erase(0, n);
    return n;
  }
  if (broken_) return size_t{0};  // EOF
  const SimNet::PeerState state = net_->Peer(host_, port_, epoch_);
  if (state == SimNet::PeerState::kDead) return size_t{0};  // EOF
  if (state == SimNet::PeerState::kPartitioned) {
    // Block until the io deadline (or a nominal one — a deadline-less
    // recv against a partition would hang a real process too).
    clock_->AdvanceMillis(io_timeout_ms_ > 0 ? io_timeout_ms_ : 1000.0);
    return Status::IOError("sim: recv from " + host_ + ":" +
                           std::to_string(port_) +
                           " timed out (partitioned)");
  }
  // The protocol is request/response lockstep: by the time a caller
  // recvs, the (synchronous) dispatch has queued the reply. An empty
  // queue on a healthy connection means the harness lost track of a
  // frame — fail loudly instead of deadlocking.
  return Status::IOError("sim: recv would block (no response in flight)");
}

// ---------------------------------------------------------------------------
// SimNet

SimNet::SimNet(SimClock* clock, uint64_t seed, double fault_rate)
    : clock_(clock),
      rng_(seed),
      fault_rate_(fault_rate),
      transport_impl_(new SimTransport(this, clock)) {}

serve::Transport* SimNet::transport() { return transport_impl_.get(); }

void SimNet::Listen(const std::string& host, int port,
                    serve::RequestHandler* handler) {
  Endpoint& ep = endpoints_[{host, port}];
  ep.handler = handler;
  ep.alive = true;
}

void SimNet::Kill(const std::string& host, int port) {
  Endpoint* ep = Find(host, port);
  if (ep == nullptr || !ep->alive) return;
  ep->alive = false;
  ep->handler = nullptr;
  ++ep->epoch;
}

void SimNet::Revive(const std::string& host, int port,
                    serve::RequestHandler* handler) {
  Endpoint& ep = endpoints_[{host, port}];
  ep.alive = true;
  ep.handler = handler;
  ++ep.epoch;
}

void SimNet::SetPartitioned(const std::string& host, int port,
                            bool partitioned) {
  Endpoint* ep = Find(host, port);
  if (ep != nullptr) ep->partitioned = partitioned;
}

void SimNet::UseSchedule(const std::vector<FaultEvent>& faults) {
  replay_ = true;
  replay_faults_.clear();
  for (const FaultEvent& f : faults) replay_faults_[f.op_index] = f;
}

void SimNet::StopFaults() {
  fault_rate_ = 0.0;
  replay_faults_.clear();
}

SimNet::Endpoint* SimNet::Find(const std::string& host, int port) {
  auto it = endpoints_.find({host, port});
  return it == endpoints_.end() ? nullptr : &it->second;
}

SimNet::PeerState SimNet::Peer(const std::string& host, int port,
                               uint64_t epoch) {
  Endpoint* ep = Find(host, port);
  if (ep == nullptr || !ep->alive || ep->epoch != epoch) {
    return PeerState::kDead;
  }
  if (ep->partitioned) return PeerState::kPartitioned;
  return PeerState::kOk;
}

serve::RequestHandler* SimNet::Handler(const std::string& host, int port,
                                       uint64_t epoch) {
  return Peer(host, port, epoch) == PeerState::kOk
             ? Find(host, port)->handler
             : nullptr;
}

FaultKind SimNet::DrawFault(bool dial_site, double* delay_ms) {
  *delay_ms = 0.0;
  if (audit_) return FaultKind::kNone;
  const uint64_t op = op_count_++;
  if (replay_) {
    const auto it = replay_faults_.find(op);
    if (it == replay_faults_.end()) return FaultKind::kNone;
    const FaultEvent& event = it->second;
    const bool dial_kind = event.kind == FaultKind::kDialFail;
    const bool applicable =
        event.kind == FaultKind::kDelay || (dial_site == dial_kind);
    if (!applicable) return FaultKind::kNone;  // shrink-shifted: ignore
    *delay_ms = event.delay_ms;
    ++faults_injected_;
    return event.kind;
  }
  if (fault_rate_ <= 0.0) return FaultKind::kNone;
  if (rng_.NextDouble() >= fault_rate_) return FaultKind::kNone;
  FaultKind kind;
  if (dial_site) {
    kind = rng_.NextBelow(4) == 0 ? FaultKind::kDelay : FaultKind::kDialFail;
  } else {
    static constexpr FaultKind kSendKinds[] = {
        FaultKind::kSendZero,     FaultKind::kSendPartial,
        FaultKind::kDropRequest,  FaultKind::kDropResponse,
        FaultKind::kDupResponse,  FaultKind::kDelay,
    };
    kind = kSendKinds[rng_.NextBelow(6)];
  }
  FaultEvent event;
  event.op_index = op;
  event.kind = kind;
  if (kind == FaultKind::kDelay) {
    event.delay_ms = 1.0 + static_cast<double>(rng_.NextBelow(50));
  }
  *delay_ms = event.delay_ms;
  recorded_.push_back(event);
  ++faults_injected_;
  return kind;
}

}  // namespace sim
}  // namespace et
