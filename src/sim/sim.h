// Deterministic simulation of the serving stack's wire and clock.
//
// The serve/cluster code talks to the world through exactly two seams —
// serve::Transport and et::Clock — so substituting both puts the whole
// client/router/shard stack inside a single-threaded, seeded simulation
// (the FoundationDB recipe): SimClock is a virtual clock whose sleeps
// advance time instantly and fire registered periodic timers (the
// router's health probes), and SimNet is an in-process network whose
// every nondeterministic choice — fault injection, delays — is drawn
// from one SplitMix64 stream. A seed therefore fully determines a run;
// a failing seed replays bit-identically, and its recorded fault
// schedule can be shrunk to a minimal repro (sim/harness.h).
//
// Fault model (FaultKind), chosen to exercise every branch of the
// transport error contract in transport.h:
//
//   kDialFail      connect refused            -> request never existed
//   kSendZero      send fails, zero bytes     -> provably unapplied
//   kSendPartial   connection dies mid-frame  -> outcome unknown
//   kDropRequest   frame sent, never arrives  -> outcome unknown
//   kDropResponse  frame APPLIED, reply lost  -> outcome unknown (the
//                                               dangerous one: a blind
//                                               resend double-applies)
//   kDupResponse   reply delivered twice      -> stale-id skip path
//   kDelay         virtual latency            -> timers fire mid-call
//
// Environment events (EnvEvent) model whole-process failures: shard
// crash/restart and network partition/heal. The harness applies them at
// workload step boundaries; SimNet models a crash as an endpoint epoch
// bump, so connections dialed before the crash observe EOF exactly like
// sockets of a dead process, while a restarted process (same host:port,
// new epoch, new handler) serves fresh dials.

#ifndef ET_SIM_SIM_H_
#define ET_SIM_SIM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "serve/session.h"
#include "serve/transport.h"

namespace et {
namespace sim {

/// SplitMix64: tiny, well-mixed, and trivially portable — every draw
/// the simulation makes comes from one of these streams, which is what
/// makes a seed a complete description of a run.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [0, n); n must be > 0.
  uint64_t NextBelow(uint64_t n) { return Next() % n; }

 private:
  uint64_t state_;
};

/// Virtual time. Single-threaded by design: the simulation owns the
/// only thread, so no atomics. Sleeps advance time instantly, and any
/// advance fires due periodic timers in (due-time, registration) order
/// — that is how the router's health-probe cadence runs while a client
/// "sleeps" through a retry backoff.
class SimClock : public Clock {
 public:
  SimClock() = default;

  uint64_t MonotonicNanos() override { return mono_ns_; }
  uint64_t WallUnixMillis() override {
    return kWallEpochMs + (mono_ns_ - kMonoEpochNs) / 1000000;
  }
  void SleepForMillis(double ms) override { AdvanceMillis(ms); }

  /// Advances virtual time, firing every periodic timer that falls due
  /// within the span. A timer callback that itself sleeps (the router's
  /// failover retry loop) advances time reentrantly WITHOUT re-firing
  /// timers — the guard bounds recursion; skipped firings catch up on
  /// the next top-level advance.
  void AdvanceMillis(double ms);

  /// Registers a periodic callback, first due one period from now.
  /// Returns an id for RemoveTimer.
  int AddPeriodicTimer(double period_ms, std::function<void()> fn);
  void RemoveTimer(int id);

  /// Virtual milliseconds elapsed since construction.
  double ElapsedMillis() const {
    return static_cast<double>(mono_ns_ - kMonoEpochNs) / 1e6;
  }

 private:
  static constexpr uint64_t kMonoEpochNs = uint64_t{1} << 30;
  static constexpr uint64_t kWallEpochMs = 1700000000000ULL;

  struct Timer {
    int id = 0;
    uint64_t period_ns = 0;
    uint64_t next_ns = 0;
    std::function<void()> fn;
    bool dead = false;
  };

  uint64_t mono_ns_ = kMonoEpochNs;
  bool firing_ = false;
  int next_timer_id_ = 1;
  std::vector<Timer> timers_;
};

enum class FaultKind : int {
  kNone = 0,
  kDialFail,
  kSendZero,
  kSendPartial,
  kDropRequest,
  kDropResponse,
  kDupResponse,
  kDelay,
};

const char* FaultKindName(FaultKind kind);

/// One injected transport fault, keyed by the global transport-op index
/// at which it fired (ops are counted deterministically, so the index
/// addresses the same dial/send across replays of the same schedule).
struct FaultEvent {
  uint64_t op_index = 0;
  FaultKind kind = FaultKind::kNone;
  double delay_ms = 0.0;  // kDelay only
};

enum class EnvKind : int { kCrash = 0, kRestart, kPartition, kHeal };

const char* EnvKindName(EnvKind kind);

/// One environment disturbance, keyed by the workload step at which the
/// harness applies it.
struct EnvEvent {
  uint64_t step = 0;
  EnvKind kind = EnvKind::kCrash;
  int shard = 0;
};

/// The complete fault record of a run: replaying it (SimNet replay mode
/// + the harness's env replay) consumes no randomness at all, so a
/// schedule survives shrinking — removing one event leaves every other
/// event addressed exactly as before.
struct SimSchedule {
  std::vector<FaultEvent> faults;
  std::vector<EnvEvent> env;

  bool empty() const { return faults.empty() && env.empty(); }
  size_t size() const { return faults.size() + env.size(); }

  /// Line-oriented text form:
  ///   fault <op_index> <kind> [<delay_ms>]
  ///   env <step> <kind> <shard>
  std::string Serialize() const;
  static Result<SimSchedule> Parse(const std::string& text);
};

/// The in-process network. Endpoints are (host, port) keyed handlers —
/// the same serve::RequestHandler surface the real TCP front end
/// dispatches to — with an epoch that increments on crash/restart so
/// stale connections observe a dead peer. Requests dispatch inline
/// (single thread): SendAll parses completed frames and runs the
/// handler synchronously, queuing the framed response for Recv.
class SimNet {
 public:
  /// Record mode: faults are drawn from SplitMix64(seed) at
  /// `fault_rate` per transport op and recorded. Pass a schedule via
  /// UseSchedule for replay mode instead.
  SimNet(SimClock* clock, uint64_t seed, double fault_rate);

  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  /// Registers (or re-registers) a live endpoint.
  void Listen(const std::string& host, int port,
              serve::RequestHandler* handler);

  /// Process crash: endpoint dead, epoch bumped, handler detached.
  /// Existing connections observe EOF; dials are refused.
  void Kill(const std::string& host, int port);

  /// Process restart: alive again under a NEW epoch with a new handler
  /// (the old incarnation's connections stay dead).
  void Revive(const std::string& host, int port,
              serve::RequestHandler* handler);

  /// Partition: the endpoint is unreachable (dials and recvs time out)
  /// but the process stays alive — unlike Kill, the same epoch resumes
  /// serving on heal.
  void SetPartitioned(const std::string& host, int port, bool partitioned);

  /// Replay mode: faults come from the schedule (op_index lookup), the
  /// RNG is never consulted, and nothing new is recorded.
  void UseSchedule(const std::vector<FaultEvent>& faults);

  /// Audit mode: transport ops neither count nor draw faults — the
  /// harness uses it for reference-state reads so observation never
  /// perturbs the simulation.
  void set_audit(bool audit) { audit_ = audit; }
  bool audit() const { return audit_; }

  /// Stops further fault injection (quiesce) in either mode.
  void StopFaults();

  uint64_t op_count() const { return op_count_; }
  const std::vector<FaultEvent>& recorded() const { return recorded_; }
  size_t faults_injected() const { return faults_injected_; }

  serve::Transport* transport();

 private:
  friend class SimTransport;
  friend class SimConnection;

  struct Endpoint {
    serve::RequestHandler* handler = nullptr;
    uint64_t epoch = 0;
    bool alive = false;
    bool partitioned = false;
  };

  enum class PeerState { kOk, kDead, kPartitioned };

  Endpoint* Find(const std::string& host, int port);
  PeerState Peer(const std::string& host, int port, uint64_t epoch);
  serve::RequestHandler* Handler(const std::string& host, int port,
                                 uint64_t epoch);

  /// One fault decision for one transport op. `dial_site` restricts the
  /// applicable kinds; in replay mode an event whose kind does not fit
  /// the site is a graceful no-op (shrink safety).
  FaultKind DrawFault(bool dial_site, double* delay_ms);

  SimClock* clock_;
  SplitMix64 rng_;
  double fault_rate_;
  bool replay_ = false;
  bool audit_ = false;
  std::unordered_map<uint64_t, FaultEvent> replay_faults_;
  std::vector<FaultEvent> recorded_;
  uint64_t op_count_ = 0;
  size_t faults_injected_ = 0;
  // std::map: deterministic iteration order.
  std::map<std::pair<std::string, int>, Endpoint> endpoints_;
  std::unique_ptr<serve::Transport> transport_impl_;
};

}  // namespace sim
}  // namespace et

#endif  // ET_SIM_SIM_H_
