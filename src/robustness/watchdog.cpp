#include "robustness/watchdog.h"

#include <string>

#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace et {

Watchdog::Watchdog(double deadline_ms)
    : deadline_ms_(deadline_ms), start_(std::chrono::steady_clock::now()) {}

double Watchdog::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

bool Watchdog::expired() const {
  if (!enabled()) return false;
  if (forced_.load(std::memory_order_relaxed)) return true;
  return elapsed_ms() > deadline_ms_;
}

Status Watchdog::Check(std::string_view what) const {
  if (!expired()) return Status::OK();
  if (!reported_.exchange(true, std::memory_order_relaxed)) {
    ET_COUNTER_INC("robustness.watchdog.expired");
    ET_LOG(Warn) << "watchdog: " << what << " exceeded deadline of "
                 << deadline_ms_ << " ms (elapsed " << elapsed_ms()
                 << " ms), aborting";
  }
  return Status::DeadlineExceeded(
      std::string(what) + " exceeded deadline of " +
      StrFormat("%.0f", deadline_ms_) + " ms");
}

}  // namespace et
