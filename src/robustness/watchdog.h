// Cooperative deadline watchdog for experiment repetitions.
//
// A wedged repetition (adversarial input, pathological hypothesis
// space, injected stall) must not hold the whole run hostage: the
// harness arms a Watchdog per repetition and threads its Check() into
// the game loop's cooperative abort hook. Past the deadline, Check()
// returns kDeadlineExceeded, the repetition unwinds through the normal
// Status path, and the harness keeps every already-checkpointed
// repetition — so an aborted run resumes instead of restarting.
//
// The watchdog is deliberately cooperative (polled), not preemptive: a
// preempted thread could die holding locks or half-written state,
// which is exactly what checkpoint consistency forbids. Check() costs
// one steady_clock read.

#ifndef ET_ROBUSTNESS_WATCHDOG_H_
#define ET_ROBUSTNESS_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <string_view>

#include "common/status.h"

namespace et {

class Watchdog {
 public:
  /// deadline_ms <= 0 disables the watchdog (Check always OK).
  explicit Watchdog(double deadline_ms);

  bool enabled() const { return deadline_ms_ > 0.0; }

  double elapsed_ms() const;

  /// True once the deadline has passed (sticky).
  bool expired() const;

  /// OK while within the deadline; afterwards a kDeadlineExceeded
  /// Status naming `what`. Increments robustness.watchdog.expired on
  /// the first expired observation.
  Status Check(std::string_view what) const;

  /// Forces expiry regardless of wall-clock (deterministic tests).
  void ForceExpireForTest() { forced_.store(true, std::memory_order_relaxed); }

 private:
  double deadline_ms_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<bool> forced_{false};
  mutable std::atomic<bool> reported_{false};
};

}  // namespace et

#endif  // ET_ROBUSTNESS_WATCHDOG_H_
