#include "robustness/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "common/strings.h"
#include "obs/metrics.h"
#include "robustness/fault.h"

namespace et {
namespace fs = std::filesystem;

Status AtomicWriteFile(const std::string& path, const std::string& payload) {
  ET_FAULT_POINT("checkpoint.write");
  std::error_code ec;
  const fs::path target(path);
  if (target.has_parent_path()) {
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      return Status::IOError("cannot create " +
                             target.parent_path().string() + ": " +
                             ec.message());
    }
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp + " for write");
    out << payload;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IOError("write failed: " + tmp);
    }
  }
  // rename(2) is atomic within a filesystem: readers see the old file
  // or the new one, never a prefix.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return Status::IOError("rename " + tmp + " -> " + path + ": " +
                           std::strerror(err));
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  ET_FAULT_POINT("checkpoint.read");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return ss.str();
}

std::string ConfigFingerprint(const std::string& canonical_config) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : canonical_config) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return StrFormat("%016llx", static_cast<unsigned long long>(h));
}

CheckpointStore::CheckpointStore(std::string dir, std::string run_id,
                                 BackoffOptions backoff)
    : dir_(std::move(dir)),
      run_id_(std::move(run_id)),
      backoff_(backoff) {}

std::string CheckpointStore::PathFor(const std::string& name) const {
  return (fs::path(dir_) / (run_id_ + "." + name + ".json")).string();
}

Status CheckpointStore::Save(const std::string& name,
                             const std::string& payload) {
  const std::string path = PathFor(name);
  Status st = RetryWithBackoff(
      "checkpoint save " + name,
      [&] { return AtomicWriteFile(path, payload); }, backoff_);
  if (st.ok()) ET_COUNTER_INC("robustness.checkpoint.saved");
  return st;
}

Result<std::string> CheckpointStore::Load(const std::string& name) const {
  const std::string path = PathFor(name);
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    return Status::NotFound("no checkpoint " + path);
  }
  Result<std::string> payload = RetryResultWithBackoff<std::string>(
      "checkpoint load " + name,
      [&] { return ReadFileToString(path); }, backoff_);
  if (payload.ok()) ET_COUNTER_INC("robustness.checkpoint.loaded");
  return payload;
}

bool CheckpointStore::Contains(const std::string& name) const {
  std::error_code ec;
  return fs::exists(PathFor(name), ec);
}

Status CheckpointStore::Remove(const std::string& name) {
  std::error_code ec;
  fs::remove(PathFor(name), ec);
  if (ec) {
    return Status::IOError("remove " + PathFor(name) + ": " + ec.message());
  }
  return Status::OK();
}

std::vector<std::string> CheckpointStore::List() const {
  std::vector<std::string> names;
  std::error_code ec;
  const std::string prefix = run_id_ + ".";
  const std::string suffix = ".json";
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string file = entry.path().filename().string();
    if (!StartsWith(file, prefix) || !EndsWith(file, suffix)) continue;
    names.push_back(
        file.substr(prefix.size(),
                    file.size() - prefix.size() - suffix.size()));
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace et
