#include "robustness/fault.h"

#include <cstdlib>
#include <new>
#include <set>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace et {
namespace {

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Uniform [0,1) decision for (seed, site, hit): independent of thread
/// interleaving and of every other site's traffic.
double DecisionDouble(uint64_t seed, uint64_t site_hash, uint64_t hit) {
  return static_cast<double>(Mix(seed ^ site_hash ^ (hit * 0x2545F4914F6CDD1DULL)) >> 11) *
         0x1.0p-53;
}

const char* ModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kFail:
      return "fail";
    case FaultMode::kThrow:
      return "throw";
    case FaultMode::kOom:
      return "oom";
  }
  return "?";
}

/// Site-name registry. A leaked singleton for the same reason as the
/// injector: ET_FAULT_POINT statics may register during static init and
/// sites may execute during static destruction.
struct SiteRegistry {
  std::mutex mu;
  std::set<std::string> names;

  static SiteRegistry& Global() {
    static SiteRegistry* registry = new SiteRegistry();
    return *registry;
  }
};

}  // namespace

const char* RegisterFaultSite(const char* site) {
  SiteRegistry& registry = SiteRegistry::Global();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.names.insert(site);
  return site;
}

std::vector<std::string> KnownFaultSites() {
  SiteRegistry& registry = SiteRegistry::Global();
  std::lock_guard<std::mutex> lock(registry.mu);
  return std::vector<std::string>(registry.names.begin(),
                                  registry.names.end());
}

struct FaultInjector::Site {
  FaultMode mode = FaultMode::kFail;
  uint64_t at_hit = 0;       // > 0: fire exactly on this hit
  double probability = 0.0;  // > 0: fire per hit with this probability
  uint64_t site_hash = 0;
  obs::Counter* fired_counter = nullptr;  // fault.injected.<site>
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> fired{0};
};

struct FaultInjector::Plan {
  uint64_t seed = 0;
  std::unordered_map<std::string, Site> sites;
};

FaultInjector& FaultInjector::Global() {
  // Any binary that links the injector honors ET_FAULT from its first
  // fault-point on; an unparsable plan is ignored rather than fatal so
  // a bad env var cannot take down a production run.
  static FaultInjector* injector = [] {
    auto* made = new FaultInjector();
    const char* env = std::getenv("ET_FAULT");
    if (env != nullptr && env[0] != '\0') {
      const Status status = made->Configure(env);
      if (!status.ok()) {
        ET_LOG(Warn) << "ignoring ET_FAULT plan: " << status.ToString();
      }
    }
    return made;
  }();
  return *injector;
}

Status FaultInjector::Configure(const std::string& plan_text) {
  const std::string trimmed(Trim(plan_text));
  if (trimmed.empty()) {
    Disable();
    return Status::OK();
  }
  auto plan = std::make_shared<Plan>();
  for (const std::string& part : Split(trimmed, ';')) {
    const std::string entry(Trim(part));
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("fault plan entry '" + entry +
                                     "' is not site=trigger");
    }
    const std::string site(Trim(entry.substr(0, eq)));
    const std::string trigger(Trim(entry.substr(eq + 1)));
    if (site == "seed") {
      ET_ASSIGN_OR_RETURN(long long seed, ParseInt(trigger));
      plan->seed = static_cast<uint64_t>(seed);
      continue;
    }
    Site spec;
    spec.site_hash = Fnv1a(site);
    std::string mode = trigger;
    std::string arg;
    bool probabilistic = false;
    const size_t sep = trigger.find_first_of("@%");
    if (sep != std::string::npos) {
      mode = trigger.substr(0, sep);
      arg = trigger.substr(sep + 1);
      probabilistic = trigger[sep] == '%';
    }
    if (mode == "fail") {
      spec.mode = FaultMode::kFail;
    } else if (mode == "throw") {
      spec.mode = FaultMode::kThrow;
    } else if (mode == "oom") {
      spec.mode = FaultMode::kOom;
    } else {
      return Status::InvalidArgument(
          "fault plan site '" + site + "': unknown mode '" + mode +
          "' (use fail|throw|oom)");
    }
    if (arg.empty()) {
      // Bare mode: fire on the first hit.
      spec.at_hit = 1;
    } else if (probabilistic) {
      ET_ASSIGN_OR_RETURN(spec.probability, ParseDouble(arg));
      if (spec.probability < 0.0 || spec.probability > 1.0) {
        return Status::InvalidArgument("fault plan site '" + site +
                                       "': probability out of [0,1]");
      }
    } else {
      ET_ASSIGN_OR_RETURN(long long n, ParseInt(arg));
      if (n <= 0) {
        return Status::InvalidArgument("fault plan site '" + site +
                                       "': hit count must be positive");
      }
      spec.at_hit = static_cast<uint64_t>(n);
    }
    spec.fired_counter =
        &obs::MetricsRegistry::Global().GetCounter("fault.injected." + site);
    auto [it, inserted] = plan->sites.try_emplace(site);
    if (!inserted) {
      return Status::InvalidArgument("fault plan names site '" + site +
                                     "' twice");
    }
    it->second.mode = spec.mode;
    it->second.at_hit = spec.at_hit;
    it->second.probability = spec.probability;
    it->second.site_hash = spec.site_hash;
    it->second.fired_counter = spec.fired_counter;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = plan;
  }
  enabled_.store(true, std::memory_order_relaxed);
  // Faults inside pool tasks must not kill workers or callers: the hook
  // raises them inside the chunk body, where the pool's containment
  // (and TryParallelFor at the harness boundary) turns them into Status.
  RegisterFaultSite("pool.task");
  SetParallelChunkHook([] {
    Status st = FaultInjector::Global().Hit("pool.task");
    if (!st.ok()) throw InjectedFault(st.message());
  });
  return Status::OK();
}

Status FaultInjector::ConfigureFromEnv() {
  const char* env = std::getenv("ET_FAULT");
  return Configure(env == nullptr ? "" : env);
}

void FaultInjector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = nullptr;
  }
  SetParallelChunkHook(nullptr);
}

Status FaultInjector::Hit(std::string_view site) {
  if (!enabled()) return Status::OK();
  std::shared_ptr<Plan> plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan = plan_;
  }
  if (plan == nullptr) return Status::OK();
  auto it = plan->sites.find(std::string(site));
  if (it == plan->sites.end()) return Status::OK();
  Site& s = it->second;
  const uint64_t hit = s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  if (s.at_hit > 0) {
    fire = hit == s.at_hit;
  } else if (s.probability > 0.0) {
    fire = DecisionDouble(plan->seed, s.site_hash, hit) < s.probability;
  }
  if (!fire) return Status::OK();
  s.fired.fetch_add(1, std::memory_order_relaxed);
  s.fired_counter->Increment();
  ET_COUNTER_INC("fault.injected.total");
  const std::string what = "injected fault at " + std::string(site) +
                           " (mode " + ModeName(s.mode) + ", hit " +
                           std::to_string(hit) + ")";
  ET_LOG(Warn) << what;
  switch (s.mode) {
    case FaultMode::kFail:
      return Status::IOError(what);
    case FaultMode::kThrow:
      throw InjectedFault(what);
    case FaultMode::kOom:
      throw std::bad_alloc();
  }
  return Status::OK();
}

FaultSiteStats FaultInjector::SiteStats(const std::string& site) const {
  std::shared_ptr<Plan> plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan = plan_;
  }
  FaultSiteStats stats;
  if (plan == nullptr) return stats;
  auto it = plan->sites.find(site);
  if (it == plan->sites.end()) return stats;
  stats.hits = it->second.hits.load(std::memory_order_relaxed);
  stats.fired = it->second.fired.load(std::memory_order_relaxed);
  return stats;
}

uint64_t FaultInjector::TotalFired() const {
  std::shared_ptr<Plan> plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    plan = plan_;
  }
  if (plan == nullptr) return 0;
  uint64_t total = 0;
  for (const auto& [name, site] : plan->sites) {
    total += site.fired.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace et
