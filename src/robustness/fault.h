// Deterministic fault injection for the experiment harness.
//
// Production annotation pipelines fail in mundane ways — a truncated
// CSV, an allocator hiccup mid-insert, a worker task that throws, a
// human who stops answering. The harness proves it degrades gracefully
// by *injecting* those failures on demand: named FAULT_POINT sites in
// the I/O, cache, pool, and annotator layers consult a process-wide
// FaultPlan and, when a site fires, fail exactly the way the real
// failure would (an error Status, a thrown exception, or bad_alloc).
//
// A plan is a seeded, semicolon-separated list of per-site triggers:
//
//   csv.read=fail@3;pool.task=throw%0.01;cache.insert=oom%0.05;seed=7
//
//   <site>=<mode>@<n>   fire exactly on the n-th hit of the site
//   <site>=<mode>%<p>   fire each hit with probability p
//   seed=<n>            seed of the probabilistic-trigger stream
//
// Modes: `fail` (the site returns Status::IOError), `throw` (the site
// throws et::InjectedFault), `oom` (the site throws std::bad_alloc).
// Probabilistic triggers are a pure function of (seed, site, hit
// index), so a plan replays identically at any thread count as long as
// each site's hits happen in a deterministic order per thread — and
// identically across runs regardless.
//
// The plan is read from the ET_FAULT environment variable (or a
// --fault flag via Configure). Every fired fault increments the
// metrics counters `fault.injected.<site>` and `fault.injected.total`,
// which therefore appear in the run manifest.
//
// Overhead when no plan is configured: one relaxed atomic load per
// site hit.

#ifndef ET_ROBUSTNESS_FAULT_H_
#define ET_ROBUSTNESS_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace et {

/// Thrown by `throw`-mode faults (a stand-in for any exception escaping
/// third-party code inside a pool task or library callback).
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class FaultMode { kFail, kThrow, kOom };

struct FaultSiteStats {
  uint64_t hits = 0;
  uint64_t fired = 0;
};

/// Adds `site` to the process-wide site registry and returns it
/// unchanged. Sites self-register the first time their ET_FAULT_POINT
/// executes; subsystems that want their sites discoverable before any
/// traffic (e.g. `et_serve --list-fault-sites`) call this eagerly at
/// startup. Registering the same name twice is a no-op. The registry is
/// purely informational — firing behavior depends only on the plan, so
/// unregistered sites in a plan still work.
const char* RegisterFaultSite(const char* site);

/// All site names registered so far, sorted. A plan may also name sites
/// that have not (yet) executed; this lists the ones the binary has
/// declared, for discovery and plan validation by tools.
std::vector<std::string> KnownFaultSites();

class FaultInjector {
 public:
  /// The process-wide injector (leaked singleton: fault sites live in
  /// code that may run during static destruction).
  static FaultInjector& Global();

  /// Parses and installs a plan; an empty string disables injection.
  /// Replaces any previous plan and resets all hit counters.
  Status Configure(const std::string& plan);

  /// Installs the plan in ET_FAULT (unset/empty = disabled).
  Status ConfigureFromEnv();

  /// Removes the plan; sites become no-ops again.
  void Disable();

  /// Fast path for call sites: false means Hit() cannot fire.
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one hit of `site`. Returns non-OK (kIOError) when a
  /// `fail`-mode fault fires; throws InjectedFault / std::bad_alloc for
  /// `throw` / `oom` modes. OK otherwise.
  Status Hit(std::string_view site);

  /// Hit/fired counts of a site under the current plan (zeros when the
  /// site is not in the plan).
  FaultSiteStats SiteStats(const std::string& site) const;

  /// Total faults fired under the current plan.
  uint64_t TotalFired() const;

 private:
  FaultInjector() = default;

  struct Site;
  struct Plan;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::shared_ptr<Plan> plan_;  // null when disabled
};

}  // namespace et

/// Declares a named fault site in a function returning Status or
/// Result<T>: a `fail`-mode fault becomes the function's error return,
/// `throw`/`oom` modes propagate as exceptions for the enclosing
/// containment layer (pool, cache) to absorb. The site name
/// self-registers (once, on first execution) so tools can enumerate the
/// binary's sites via KnownFaultSites().
#define ET_FAULT_POINT(site)                                            \
  do {                                                                  \
    static const char* _et_fault_site = ::et::RegisterFaultSite(site);  \
    if (::et::FaultInjector::Global().enabled()) {                      \
      ::et::Status _et_fault =                                          \
          ::et::FaultInjector::Global().Hit(_et_fault_site);            \
      if (!_et_fault.ok()) return _et_fault;                            \
    }                                                                   \
  } while (0)

#endif  // ET_ROBUSTNESS_FAULT_H_
