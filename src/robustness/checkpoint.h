// Journaled checkpoints for long experiment runs.
//
// A CheckpointStore is a directory of small JSON files, one per
// completed unit of work (a convergence repetition, a user-study
// scenario). Writes are atomic — payload goes to a ".tmp" sibling,
// fsync'd, then renamed over the final name — so a crash mid-write
// leaves either the old checkpoint or none, never a torn file. Reads
// and writes retry transient I/O errors with exponential backoff.
//
// File layout: <dir>/<run_id>.<name>.json. The run id is derived from
// a fingerprint of the experiment configuration, so resuming with a
// different config simply finds no checkpoints instead of silently
// mixing incompatible results.

#ifndef ET_ROBUSTNESS_CHECKPOINT_H_
#define ET_ROBUSTNESS_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "robustness/retry.h"

namespace et {

/// Writes `payload` to `path` atomically (tmp file + rename). Creates
/// parent directories as needed.
Status AtomicWriteFile(const std::string& path, const std::string& payload);

/// Slurps a file; kIOError (retryable) when it cannot be opened or read.
Result<std::string> ReadFileToString(const std::string& path);

/// Stable 64-bit FNV-1a fingerprint of a config string, rendered as hex
/// (used to key checkpoints to the exact producing configuration).
std::string ConfigFingerprint(const std::string& canonical_config);

class CheckpointStore {
 public:
  /// `dir` is created lazily on first Save. `run_id` namespaces this
  /// run's files within the directory.
  CheckpointStore(std::string dir, std::string run_id,
                  BackoffOptions backoff = BackoffOptions::FromEnv());

  const std::string& dir() const { return dir_; }
  const std::string& run_id() const { return run_id_; }

  std::string PathFor(const std::string& name) const;

  /// Atomically persists one checkpoint (retrying transient failures).
  Status Save(const std::string& name, const std::string& payload);

  /// Loads a checkpoint's payload; kNotFound when absent.
  Result<std::string> Load(const std::string& name) const;

  bool Contains(const std::string& name) const;

  /// Removes one checkpoint; OK when it does not exist.
  Status Remove(const std::string& name);

  /// Names of this run's checkpoints currently on disk, sorted.
  std::vector<std::string> List() const;

 private:
  std::string dir_;
  std::string run_id_;
  BackoffOptions backoff_;
};

}  // namespace et

#endif  // ET_ROBUSTNESS_CHECKPOINT_H_
