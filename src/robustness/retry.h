// Retry-with-exponential-backoff around transient failures.
//
// File I/O in the harness (dataset CSVs, report files, checkpoints) can
// fail transiently — NFS hiccups, OOM-evicted page cache, an injected
// fault. RetryWithBackoff re-runs an operation on retryable errors
// (kIOError) with exponentially growing, jittered, capped delays. The
// jitter stream is seeded, so a given (seed, operation name) produces
// the same delay sequence every run; tests disable sleeping entirely
// and assert on the recorded delays instead.
//
// Counters: robustness.retry.attempts (re-runs after a failure),
// robustness.retry.recovered (ops that eventually succeeded after
// failing at least once), robustness.retry.exhausted (ops that failed
// every attempt).

#ifndef ET_ROBUSTNESS_RETRY_H_
#define ET_ROBUSTNESS_RETRY_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace et {

struct BackoffOptions {
  /// Total tries, including the first (>= 1).
  int max_attempts = 4;
  double initial_delay_ms = 5.0;
  double multiplier = 2.0;
  double max_delay_ms = 1000.0;
  /// Each delay is scaled by a uniform factor in [1 - jitter, 1 + jitter].
  double jitter = 0.5;
  /// Seed of the deterministic jitter stream (mixed with the op name).
  uint64_t seed = 0;
  /// When false, delays are computed and recorded but not slept —
  /// deterministic, instant tests.
  bool sleep = true;

  /// Defaults overridden by ET_RETRY_MAX_ATTEMPTS, ET_RETRY_INITIAL_MS,
  /// ET_RETRY_MAX_MS, ET_RETRY_SEED when set.
  static BackoffOptions FromEnv();
};

/// True for errors worth retrying (I/O failures); logic errors
/// (invalid argument, not found, ...) fail fast.
bool IsRetryableStatus(const Status& status);

/// Runs `op` until it succeeds, returns a non-retryable error, or
/// `options.max_attempts` attempts are spent; returns the final status.
/// `what` names the operation in logs and seeds the jitter stream.
/// When `delays_ms` is non-null, every backoff delay is appended to it.
Status RetryWithBackoff(std::string_view what,
                        const std::function<Status()>& op,
                        const BackoffOptions& options = BackoffOptions::FromEnv(),
                        std::vector<double>* delays_ms = nullptr);

/// Result<T>-returning flavour: retries on retryable error statuses and
/// returns the value of the first successful attempt.
template <typename T>
Result<T> RetryResultWithBackoff(
    std::string_view what, const std::function<Result<T>()>& op,
    const BackoffOptions& options = BackoffOptions::FromEnv(),
    std::vector<double>* delays_ms = nullptr) {
  Result<T> last = Status::Internal("retry: operation never ran");
  Status final_status = RetryWithBackoff(
      what,
      [&]() {
        last = op();
        return last.status();
      },
      options, delays_ms);
  if (!final_status.ok()) return final_status;
  return last;
}

}  // namespace et

#endif  // ET_ROBUSTNESS_RETRY_H_
