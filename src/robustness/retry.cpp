#include "robustness/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace et {
namespace {

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

double EnvDouble(const char* name, double def) {
  const char* env = std::getenv(name);
  if (env == nullptr) return def;
  auto v = ParseDouble(env);
  return v.ok() ? *v : def;
}

long long EnvInt(const char* name, long long def) {
  const char* env = std::getenv(name);
  if (env == nullptr) return def;
  auto v = ParseInt(env);
  return v.ok() ? *v : def;
}

}  // namespace

BackoffOptions BackoffOptions::FromEnv() {
  BackoffOptions options;
  options.max_attempts = static_cast<int>(
      std::max(1LL, EnvInt("ET_RETRY_MAX_ATTEMPTS", options.max_attempts)));
  options.initial_delay_ms =
      EnvDouble("ET_RETRY_INITIAL_MS", options.initial_delay_ms);
  options.max_delay_ms = EnvDouble("ET_RETRY_MAX_MS", options.max_delay_ms);
  options.seed = static_cast<uint64_t>(EnvInt("ET_RETRY_SEED", 0));
  return options;
}

bool IsRetryableStatus(const Status& status) {
  return status.IsIOError();
}

Status RetryWithBackoff(std::string_view what,
                        const std::function<Status()>& op,
                        const BackoffOptions& options,
                        std::vector<double>* delays_ms) {
  const int attempts = std::max(1, options.max_attempts);
  // One jitter stream per (seed, operation name): replayable, and two
  // concurrently retrying operations never share delays.
  Rng jitter_rng(options.seed ^ Fnv1a(what));
  Status status;
  bool failed_once = false;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    status = op();
    if (status.ok()) {
      if (failed_once) ET_COUNTER_INC("robustness.retry.recovered");
      return status;
    }
    if (!IsRetryableStatus(status)) return status;
    failed_once = true;
    if (attempt == attempts) break;
    ET_COUNTER_INC("robustness.retry.attempts");
    double delay =
        options.initial_delay_ms *
        std::pow(options.multiplier, static_cast<double>(attempt - 1));
    delay = std::min(delay, options.max_delay_ms);
    const double jitter = std::clamp(options.jitter, 0.0, 1.0);
    delay *= 1.0 - jitter + 2.0 * jitter * jitter_rng.NextDouble();
    if (delays_ms != nullptr) delays_ms->push_back(delay);
    ET_LOG(Warn) << what << " failed (attempt " << attempt << "/"
                 << attempts << "): " << status.ToString() << "; retrying in "
                 << delay << " ms";
    if (options.sleep && delay > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
    }
  }
  ET_COUNTER_INC("robustness.retry.exhausted");
  return status;
}

}  // namespace et
