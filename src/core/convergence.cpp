#include "core/convergence.h"

#include <cmath>

#include "obs/metrics.h"

namespace et {

void EmpiricalFrequency::Record(size_t action_id) {
  ++counts_[action_id];
  ++total_;
}

double EmpiricalFrequency::Frequency(size_t action_id) const {
  if (total_ == 0) return 0.0;
  auto it = counts_.find(action_id);
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total_);
}

double EmpiricalFrequency::L1Distance(
    const EmpiricalFrequency& other) const {
  double d = 0.0;
  for (const auto& [id, cnt] : counts_) {
    (void)cnt;
    d += std::fabs(Frequency(id) - other.Frequency(id));
  }
  for (const auto& [id, cnt] : other.counts_) {
    (void)cnt;
    if (!counts_.count(id)) d += other.Frequency(id);
  }
  return d;
}

std::unordered_map<size_t, double> EmpiricalFrequency::Distribution()
    const {
  std::unordered_map<size_t, double> out;
  for (const auto& [id, cnt] : counts_) {
    (void)cnt;
    out[id] = Frequency(id);
  }
  return out;
}

bool SeriesConverged(const std::vector<double>& series, size_t window,
                     double tolerance) {
  if (series.size() < window + 1) return false;
  for (size_t i = series.size() - window; i < series.size(); ++i) {
    if (std::fabs(series[i] - series[i - 1]) > tolerance) return false;
  }
  return true;
}

double ConvergenceTracker::RecordIteration(
    const std::vector<size_t>& action_ids) {
  const EmpiricalFrequency before = freq_;
  for (size_t id : action_ids) freq_.Record(id);
  const double d = freq_.L1Distance(before);
  drift_.push_back(d);
  ET_COUNTER_INC("core.convergence.records");
  ET_GAUGE_SET("core.convergence.last_drift", d);
  return d;
}

}  // namespace et
