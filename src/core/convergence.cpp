#include "core/convergence.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.h"

namespace et {

void EmpiricalFrequency::Record(size_t action_id) {
  ++counts_[action_id];
  ++total_;
}

double EmpiricalFrequency::Frequency(size_t action_id) const {
  if (total_ == 0) return 0.0;
  auto it = counts_.find(action_id);
  if (it == counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(total_);
}

double EmpiricalFrequency::L1Distance(
    const EmpiricalFrequency& other) const {
  // Summed over the sorted union of supports: float addition is not
  // associative, so summing in unordered_map iteration order would make
  // the result depend on each map's insertion history — and a tracker
  // restored from a snapshot (counts reinserted in sorted order) would
  // drift from the original by ulps. Sorted order is layout-independent,
  // which the session snapshot/restore bit-identity guarantee needs.
  std::vector<size_t> ids;
  ids.reserve(counts_.size() + other.counts_.size());
  for (const auto& [id, cnt] : counts_) {
    (void)cnt;
    ids.push_back(id);
  }
  for (const auto& [id, cnt] : other.counts_) {
    (void)cnt;
    if (!counts_.count(id)) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  double d = 0.0;
  for (size_t id : ids) {
    d += std::fabs(Frequency(id) - other.Frequency(id));
  }
  return d;
}

std::unordered_map<size_t, double> EmpiricalFrequency::Distribution()
    const {
  std::unordered_map<size_t, double> out;
  for (const auto& [id, cnt] : counts_) {
    (void)cnt;
    out[id] = Frequency(id);
  }
  return out;
}

bool SeriesConverged(const std::vector<double>& series, size_t window,
                     double tolerance) {
  if (series.size() < window + 1) return false;
  for (size_t i = series.size() - window; i < series.size(); ++i) {
    if (std::fabs(series[i] - series[i - 1]) > tolerance) return false;
  }
  return true;
}

double ConvergenceTracker::RecordIteration(
    const std::vector<size_t>& action_ids) {
  const EmpiricalFrequency before = freq_;
  for (size_t id : action_ids) freq_.Record(id);
  const double d = freq_.L1Distance(before);
  drift_.push_back(d);
  ET_COUNTER_INC("core.convergence.records");
  ET_GAUGE_SET("core.convergence.last_drift", d);
  return d;
}

}  // namespace et
