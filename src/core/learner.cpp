#include "core/learner.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace et {

Learner::Learner(BeliefModel prior, std::unique_ptr<ResponsePolicy> policy,
                 std::vector<RowPair> candidate_pool,
                 const LearnerOptions& options, uint64_t seed)
    : belief_(std::move(prior)),
      policy_(std::move(policy)),
      pool_(std::move(candidate_pool)),
      options_(options),
      rng_(seed) {
  ET_CHECK(policy_ != nullptr);
  ET_CHECK(!pool_.empty()) << "learner needs a non-empty candidate pool";
  fresh_ = pool_;
}

void Learner::RebuildFresh() {
  fresh_.clear();
  fresh_.reserve(pool_.size() - shown_.size());
  for (const RowPair& p : pool_) {
    if (!shown_.count(p)) fresh_.push_back(p);
  }
}

size_t Learner::fresh_pool_size() const { return fresh_.size(); }

size_t Learner::RevisitSlots(size_t k) const {
  if (options_.revisit_fraction <= 0.0) return 0;
  size_t slots = static_cast<size_t>(
      options_.revisit_fraction * static_cast<double>(k));
  return std::min(slots, shown_.size());
}

bool Learner::CanSelect(size_t k) const {
  return fresh_pool_size() + RevisitSlots(k) >= k;
}

Result<std::vector<RowPair>> Learner::SelectExamples(const Relation& rel,
                                                     size_t k) {
  ET_TRACE_SCOPE("core.learner.select");
  last_revisited_.clear();
  const size_t revisit = RevisitSlots(k);
  const size_t fresh_needed = k - revisit;
  if (fresh_.size() < fresh_needed) {
    return Status::FailedPrecondition(
        "candidate pool exhausted: " + std::to_string(fresh_.size()) +
        " fresh pairs left, need " + std::to_string(fresh_needed));
  }
  EnsureScorer(rel);
  ET_ASSIGN_OR_RETURN(
      std::vector<RowPair> picked,
      policy_->SelectPairs(belief_, rel, fresh_, fresh_needed, rng_,
                           scorer_.get()));
  for (const RowPair& p : picked) shown_.insert(p);
  // Swap the picks out of the maintained fresh list (stable, so the
  // next round's candidate order — and with it the policy's RNG
  // consumption — is exactly what a from-scratch rebuild would give).
  fresh_.erase(std::remove_if(fresh_.begin(), fresh_.end(),
                              [&](const RowPair& p) {
                                return std::find(picked.begin(),
                                                 picked.end(),
                                                 p) != picked.end();
                              }),
               fresh_.end());
  if (revisit > 0) {
    // Uniformly re-present previously shown pairs (sorted snapshot for
    // determinism across hash-set iteration orders).
    std::vector<RowPair> old(shown_.begin(), shown_.end());
    std::sort(old.begin(), old.end());
    // Exclude this round's fresh picks.
    std::unordered_set<RowPair, RowPairHash> this_round(picked.begin(),
                                                        picked.end());
    std::vector<RowPair> eligible;
    eligible.reserve(old.size());
    for (const RowPair& p : old) {
      if (!this_round.count(p)) eligible.push_back(p);
    }
    const size_t take = std::min(revisit, eligible.size());
    const auto idx =
        rng_.SampleWithoutReplacement(eligible.size(), take);
    for (size_t i : idx) {
      picked.push_back(eligible[i]);
      last_revisited_.insert(eligible[i]);
    }
  }
  return picked;
}

void Learner::Consume(const Relation& rel,
                      const std::vector<LabeledPair>& labels) {
  ET_TRACE_SCOPE("core.learner.consume");
  if (options_.forgetting_factor < 1.0) {
    for (size_t i = 0; i < belief_.size(); ++i) {
      belief_.beta(i).Decay(options_.forgetting_factor);
    }
  }
  std::vector<LabeledPair> first_time;
  std::vector<LabeledPair> revisited;
  for (const LabeledPair& lp : labels) {
    (last_revisited_.count(lp.pair) ? revisited : first_time)
        .push_back(lp);
  }
  UpdateFromLabels(&belief_, rel, first_time, options_.update_weights);

  if (!revisited.empty()) {
    if (options_.replace_on_revisit) {
      // Withdraw each pair's previous opinion, then apply the new one
      // at base weight.
      for (const LabeledPair& lp : revisited) {
        auto it = previous_label_.find(lp.pair);
        if (it != previous_label_.end()) {
          RemoveLabelEvidence(&belief_, rel, {it->second},
                              options_.update_weights);
        }
        UpdateFromLabels(&belief_, rel, {lp}, options_.update_weights);
      }
    } else {
      UpdateWeights boosted = options_.update_weights;
      boosted.clean_satisfies *= options_.revisit_weight;
      boosted.clean_violates *= options_.revisit_weight;
      boosted.dirty_violates *= options_.revisit_weight;
      boosted.dirty_satisfies *= options_.revisit_weight;
      UpdateFromLabels(&belief_, rel, revisited, boosted);
    }
  }
  for (const LabeledPair& lp : labels) previous_label_[lp.pair] = lp;
  last_revisited_.clear();
}

LearnerMemento Learner::SaveMemento() const {
  LearnerMemento m;
  m.alpha.reserve(belief_.size());
  m.beta.reserve(belief_.size());
  for (size_t i = 0; i < belief_.size(); ++i) {
    m.alpha.push_back(belief_.beta(i).alpha());
    m.beta.push_back(belief_.beta(i).beta());
  }
  m.rng_state = rng_.SaveState();
  m.shown.assign(shown_.begin(), shown_.end());
  std::sort(m.shown.begin(), m.shown.end());
  return m;
}

Status Learner::RestoreMemento(const LearnerMemento& memento) {
  if (memento.alpha.size() != belief_.size() ||
      memento.beta.size() != belief_.size()) {
    return Status::InvalidArgument(
        "learner memento holds " + std::to_string(memento.alpha.size()) +
        " FDs, belief has " + std::to_string(belief_.size()));
  }
  for (size_t i = 0; i < belief_.size(); ++i) {
    belief_.beta(i) = Beta(memento.alpha[i], memento.beta[i]);
  }
  rng_.RestoreState(memento.rng_state);
  shown_.clear();
  shown_.insert(memento.shown.begin(), memento.shown.end());
  RebuildFresh();
  last_revisited_.clear();
  previous_label_.clear();
  return Status::OK();
}

void Learner::SetComplianceMatrix(
    std::shared_ptr<const PairComplianceMatrix> matrix) {
  ET_CHECK(matrix != nullptr);
  scorer_ = std::make_unique<PairScoreCache>(std::move(matrix));
  scorer_rel_ = nullptr;
  scorer_pinned_ = true;
}

void Learner::EnsureScorer(const Relation& rel) const {
  if (!options_.incremental_scoring ||
      policy_->kind() == PolicyKind::kRandom) {
    return;
  }
  if (scorer_pinned_ || (scorer_ != nullptr && scorer_rel_ == &rel)) return;
  auto matrix = std::make_shared<const PairComplianceMatrix>(
      PairComplianceMatrix::Build(rel, belief_.space_ptr(), pool_));
  scorer_ = std::make_unique<PairScoreCache>(std::move(matrix));
  scorer_rel_ = &rel;
}

std::vector<double> Learner::CurrentDistribution(
    const Relation& rel) const {
  EnsureScorer(rel);
  return policy_->Distribution(belief_, rel, fresh_, scorer_.get());
}

}  // namespace et
