// The learner agent — the active-learning system side of the game.
//
// Prediction model P^L: FP/Bayesian updating from the trainer's labeled
// pairs (belief/update.h). Response model R^L: one of the four policies
// in core/policies.h, applied to a candidate-pair pool with
// already-shown pairs removed ("a fresh example in each interaction").

#ifndef ET_CORE_LEARNER_H_
#define ET_CORE_LEARNER_H_

#include <array>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "belief/belief_model.h"
#include "belief/update.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/policies.h"
#include "core/score_cache.h"

namespace et {

struct LearnerOptions {
  /// Evidence weights of the label-update rule.
  UpdateWeights update_weights;
  /// Extension (App. D discusses relabeling as future work): fraction
  /// of each interaction's slots used to *re-present* previously shown
  /// pairs, letting a trainer whose belief has moved revise earlier
  /// labels. 0 = the paper's fresh-examples-only protocol.
  double revisit_fraction = 0.0;
  /// How relabeling evidence is weighted relative to first labels
  /// (> 1 favours newer opinions). Ignored when replace_on_revisit.
  double revisit_weight = 2.0;
  /// Replacement semantics for revisits: retract the evidence the
  /// pair's previous label contributed, then apply the new label — the
  /// old opinion is withdrawn rather than averaged against.
  bool replace_on_revisit = false;
  /// Extension: exponential evidence forgetting applied before each
  /// Consume (1.0 = the paper's accumulate-forever updating). With a
  /// non-stationary trainer, old labels reflect an old belief;
  /// discounting them lets the learner track the drift.
  double forgetting_factor = 1.0;
  /// Score candidates through a PairScoreCache (bit-identical to full
  /// rescoring; see core/score_cache.h). The pool's compliance matrix
  /// is built lazily on first selection unless the serving layer
  /// injects a shared one via SetComplianceMatrix.
  bool incremental_scoring = true;
};

/// The learner's resumable state: belief pseudo-counts (space order),
/// policy RNG stream, and the shown-pair set. Captures everything the
/// fresh-examples-only protocol (revisit_fraction == 0, the serving
/// configuration) evolves at runtime; the hypothesis space, pool, and
/// options are reconstructed deterministically from the session config
/// instead of being persisted.
struct LearnerMemento {
  std::vector<double> alpha;  // Beta alpha per FD, space order
  std::vector<double> beta;   // Beta beta per FD, space order
  std::array<uint64_t, 4> rng_state{};
  std::vector<RowPair> shown;  // sorted for stable serialization
};

class Learner {
 public:
  Learner(BeliefModel prior, std::unique_ptr<ResponsePolicy> policy,
          std::vector<RowPair> candidate_pool,
          const LearnerOptions& options, uint64_t seed);

  /// R^L: selects `k` pairs — fresh ones by default; when
  /// revisit_fraction > 0, a share of the slots re-presents previously
  /// shown pairs. Fails when the fresh pool cannot fill the remaining
  /// slots.
  Result<std::vector<RowPair>> SelectExamples(const Relation& rel,
                                              size_t k);

  /// Whether SelectExamples(k) can currently succeed.
  bool CanSelect(size_t k) const;

  /// P^L: consumes the trainer's labels. Labels for re-presented pairs
  /// are weighted by revisit_weight (newer opinions count more).
  void Consume(const Relation& rel, const std::vector<LabeledPair>& labels);

  /// The current selection distribution over the *fresh* pool (used by
  /// convergence tracking and tests).
  std::vector<double> CurrentDistribution(const Relation& rel) const;

  const BeliefModel& belief() const { return belief_; }
  const ResponsePolicy& policy() const { return *policy_; }
  size_t fresh_pool_size() const;

  /// Captures the resumable state (belief, RNG, shown pairs). Restoring
  /// the memento into a freshly constructed Learner with the same
  /// space/pool/policy resumes the stream bit-identically. Only valid
  /// for the fresh-examples-only protocol (revisit_fraction == 0):
  /// relabeling bookkeeping is not captured.
  LearnerMemento SaveMemento() const;

  /// Installs a memento captured by SaveMemento. Fails when the belief
  /// sizes disagree (memento from a different hypothesis space).
  Status RestoreMemento(const LearnerMemento& memento);

  /// Installs a prebuilt compliance matrix of this learner's pool
  /// (shared across sessions by the serving layer) for incremental
  /// scoring, instead of building one lazily on first selection.
  void SetComplianceMatrix(
      std::shared_ptr<const PairComplianceMatrix> matrix);

 private:
  /// Recomputes fresh_ from pool_ minus shown_ (memento restore; the
  /// steady state maintains it incrementally in SelectExamples).
  void RebuildFresh();
  size_t RevisitSlots(size_t k) const;
  /// Lazily builds the score cache when incremental scoring is on
  /// (const: CurrentDistribution scores too). Skipped for the random
  /// policy, which never looks at scores.
  void EnsureScorer(const Relation& rel) const;

  BeliefModel belief_;
  std::unique_ptr<ResponsePolicy> policy_;
  std::vector<RowPair> pool_;
  /// pool_ minus shown_, in pool order — maintained across rounds so
  /// selection never rescans the pool against the shown set.
  std::vector<RowPair> fresh_;
  std::unordered_set<RowPair, RowPairHash> shown_;
  /// Pairs re-presented in the latest SelectExamples call (consumed by
  /// the next Consume to weight relabeling evidence).
  std::unordered_set<RowPair, RowPairHash> last_revisited_;
  /// Last label consumed per pair (for replacement semantics).
  std::unordered_map<RowPair, LabeledPair, RowPairHash> previous_label_;
  LearnerOptions options_;
  Rng rng_;
  /// Incremental scoring state (caches, no behavioural effect).
  /// scorer_rel_ guards against a relation swap mid-lifetime; a
  /// serving-injected matrix (scorer_pinned_) is trusted as-is.
  mutable std::unique_ptr<PairScoreCache> scorer_;
  mutable const Relation* scorer_rel_ = nullptr;
  bool scorer_pinned_ = false;
};

}  // namespace et

#endif  // ET_CORE_LEARNER_H_
