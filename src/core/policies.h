// Learner response policies R^L (Section 4 of the paper).
//
//   Fixed Random Sampling        — uniform over the candidate pool.
//   Uncertainty Sampling (US)    — deterministic argmax of label entropy
//                                  under the learner's belief.
//   Stochastic Best Response     — pi(x) ∝ exp(u_a(theta, x) / gamma).
//   Stochastic Uncertainty       — pi(x) ∝ exp(entropy(x, theta) / gamma).
//
// gamma = 0.5 throughout the paper's experiments. All policies select
// pairs of tuples and never repeat a pair within a game ("the learner
// provides a fresh example in each interaction").

#ifndef ET_CORE_POLICIES_H_
#define ET_CORE_POLICIES_H_

#include <memory>
#include <string>
#include <vector>

#include "belief/belief_model.h"
#include "common/result.h"
#include "common/rng.h"
#include "core/inference.h"
#include "fd/violations.h"

namespace et {

class PairScoreCache;

/// The kind of response policy, for configs and reports.
enum class PolicyKind {
  kRandom,
  kUncertainty,
  kStochasticBestResponse,
  kStochasticUncertainty,
  // Extensions beyond the paper's four (classic active-learning
  // baselines adapted to the pair setting):
  /// Query-by-committee: a committee of beliefs sampled from the Beta
  /// posteriors votes on each pair's labels; selection follows vote
  /// disagreement (softmax with gamma).
  kQueryByCommittee,
  /// Density-weighted uncertainty: entropy scaled by how many
  /// hypothesis-space FDs the pair is applicable to (informative for
  /// many rules = representative), softmax with gamma.
  kDensityWeightedUncertainty,
};

const char* PolicyKindToString(PolicyKind kind);

/// Interface: select `k` fresh pairs from `candidates` given the
/// learner's current belief. `candidates` excludes already-shown pairs
/// (the Learner filters them before calling).
class ResponsePolicy {
 public:
  virtual ~ResponsePolicy() = default;

  virtual PolicyKind kind() const = 0;
  std::string name() const { return PolicyKindToString(kind()); }

  /// Selection distribution pi_t^L over `candidates` under `belief`
  /// (the per-interaction policy of Section 2). Sums to 1.
  std::vector<double> Distribution(
      const BeliefModel& belief, const Relation& rel,
      const std::vector<RowPair>& candidates) const {
    return Distribution(belief, rel, candidates, nullptr);
  }

  /// As above, with an optional incremental score cache (see
  /// core/score_cache.h). A null `scorer` scores every candidate from
  /// scratch; a non-null one serves unchanged candidates from cache —
  /// the results are bit-identical either way.
  virtual std::vector<double> Distribution(
      const BeliefModel& belief, const Relation& rel,
      const std::vector<RowPair>& candidates,
      PairScoreCache* scorer) const = 0;

  /// Draws `k` distinct pairs. Default: sequential draws from
  /// Distribution() with chosen entries zeroed out. Deterministic
  /// policies override. k must be <= candidates.size().
  Result<std::vector<RowPair>> SelectPairs(
      const BeliefModel& belief, const Relation& rel,
      const std::vector<RowPair>& candidates, size_t k, Rng& rng) const {
    return SelectPairs(belief, rel, candidates, k, rng, nullptr);
  }

  /// As above, with an optional incremental score cache.
  virtual Result<std::vector<RowPair>> SelectPairs(
      const BeliefModel& belief, const Relation& rel,
      const std::vector<RowPair>& candidates, size_t k, Rng& rng,
      PairScoreCache* scorer) const;
};

/// Factory configuration.
struct PolicyOptions {
  /// Exploration temperature gamma of the stochastic policies.
  double gamma = 0.5;
  /// Inference options used to score pairs under the belief.
  InferenceOptions inference;
  /// Committee size for query-by-committee.
  size_t committee_size = 8;
  /// Seed for the committee's posterior draws.
  uint64_t committee_seed = 0xC0117EE;
};

/// Creates a policy of the given kind.
std::unique_ptr<ResponsePolicy> MakePolicy(PolicyKind kind,
                                           const PolicyOptions& options = {});

/// The paper's four policies, in the order the figures list them.
std::vector<PolicyKind> AllPolicyKinds();

/// The paper's four plus the extension baselines.
std::vector<PolicyKind> ExtendedPolicyKinds();

}  // namespace et

#endif  // ET_CORE_POLICIES_H_
