// The trainer agent — the simulated human annotator of the game.
//
// Prediction model P^T: Fictitious Play / Bayesian updating from the
// *observed* samples (the user study found FP models human trainers
// best). This is the source of non-stationarity: the trainer's labeling
// strategy tracks its drifting belief.
//
// Response model R^T (best response): label each presented tuple dirty
// exactly when the belief's dirty probability exceeds 1/2 — the labeling
// that maximizes u_T given theta^T. Optional label noise models slips.

#ifndef ET_CORE_TRAINER_H_
#define ET_CORE_TRAINER_H_

#include <deque>
#include <vector>

#include "belief/belief_model.h"
#include "belief/update.h"
#include "common/rng.h"
#include "core/inference.h"

namespace et {

/// The trainer's prediction model P^T (Section 3 of the paper).
enum class TrainerPrediction {
  /// Fictitious Play / Bayesian — what the user study found humans do.
  kFictitiousPlay,
  /// Hypothesis testing: keep a single working hypothesis; reject it
  /// when it fails to explain the recent window; adopt the best
  /// replacement. The belief exposed to the game is a proxy (high
  /// confidence on the working hypothesis, low elsewhere).
  kHypothesisTesting,
};

struct TrainerOptions {
  /// When false the trainer never updates its belief — the stationary
  /// annotator current active-learning systems assume. Figures compare
  /// against the learning (non-stationary) trainer.
  bool learns = true;
  /// Probability of flipping each emitted label (annotation slip).
  double label_noise = 0.0;
  /// Inference options used when labeling.
  InferenceOptions inference;
  /// Human-learning model driving belief updates.
  TrainerPrediction prediction = TrainerPrediction::kFictitiousPlay;
  /// Hypothesis-testing knobs (used when prediction = kHypothesisTesting).
  double ht_tolerance = 0.2;
  size_t ht_window = 1;
  /// Proxy-belief confidences the HT trainer exposes.
  double ht_current_confidence = 0.95;
  double ht_other_confidence = 0.10;
};

class Trainer {
 public:
  /// For a hypothesis-testing trainer the prior's top FD becomes the
  /// initial working hypothesis and the proxy belief is built from it.
  Trainer(BeliefModel prior, const TrainerOptions& options, uint64_t seed);

  /// P^T: updates the belief from the raw compliance evidence of the
  /// presented pairs (no-op for a stationary trainer).
  void Observe(const Relation& rel, const std::vector<RowPair>& pairs);

  /// R^T: labels each presented pair per the current belief; does not
  /// change the belief.
  std::vector<LabeledPair> Label(const Relation& rel,
                                 const std::vector<RowPair>& pairs);

  const BeliefModel& belief() const { return belief_; }
  const TrainerOptions& options() const { return options_; }

  /// Hypothesis-testing trainers: the current working hypothesis.
  size_t current_hypothesis() const { return ht_current_; }

 private:
  /// HT internals: violation rate of FD idx over the window.
  double HtViolationRate(const Relation& rel, size_t idx) const;
  void HtObserve(const Relation& rel, const std::vector<RowPair>& pairs);
  void HtRebuildProxyBelief();

  BeliefModel belief_;
  TrainerOptions options_;
  Rng rng_;
  // Hypothesis-testing state.
  size_t ht_current_ = 0;
  std::deque<std::vector<RowPair>> ht_window_;
};

}  // namespace et

#endif  // ET_CORE_TRAINER_H_
