// Equilibrium diagnostics (Section 4 / Proposition 1).
//
// The stochastic best response pi(x) ∝ exp(u_a(theta, x)/gamma) is the
// exact maximizer of the learner's entropy-regularized payoff
//   u_L(pi) = E_pi[u_a] + gamma * H(pi)
// (a maximum-entropy / Gibbs variational result). These helpers compute
// a policy's u_L *regret* against that maximizer and check whether the
// trainer's labeling was a best response to its own belief — the two
// halves of "the final state is an equilibrium".

#ifndef ET_CORE_EQUILIBRIUM_H_
#define ET_CORE_EQUILIBRIUM_H_

#include <vector>

#include "belief/update.h"
#include "common/result.h"
#include "core/inference.h"

namespace et {

/// u_L of an arbitrary selection distribution `pi` over `candidates`
/// under `belief`: expected example payoff plus gamma times entropy.
Result<double> LearnerPolicyValue(const BeliefModel& belief,
                                  const Relation& rel,
                                  const std::vector<RowPair>& candidates,
                                  const std::vector<double>& pi,
                                  double gamma,
                                  const InferenceOptions& options = {});

/// The u_L-optimal distribution over `candidates`: softmax of the
/// example payoffs at temperature gamma (the stochastic best response).
std::vector<double> OptimalLearnerPolicy(
    const BeliefModel& belief, const Relation& rel,
    const std::vector<RowPair>& candidates, double gamma,
    const InferenceOptions& options = {});

/// Regret of `pi`: u_L(optimal) - u_L(pi). Non-negative up to floating
/// point; zero exactly when pi is the stochastic best response.
Result<double> LearnerPolicyRegret(const BeliefModel& belief,
                                   const Relation& rel,
                                   const std::vector<RowPair>& candidates,
                                   const std::vector<double>& pi,
                                   double gamma,
                                   const InferenceOptions& options = {});

/// Whether every emitted label maximizes theta^T(y | x) under the
/// trainer's belief — the trainer side of the equilibrium condition
/// (best-response labeling). `tolerance` allows indifference at 0.5.
bool TrainerLabelsAreBestResponse(const BeliefModel& trainer_belief,
                                  const Relation& rel,
                                  const std::vector<LabeledPair>& labels,
                                  double tolerance = 1e-9,
                                  const InferenceOptions& options = {});

}  // namespace et

#endif  // ET_CORE_EQUILIBRIUM_H_
