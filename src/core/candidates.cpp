#include "core/candidates.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "fd/eval_cache.h"
#include "fd/partition.h"
#include "obs/trace.h"

namespace et {

Result<std::vector<RowPair>> BuildCandidatePairs(
    const Relation& rel, const HypothesisSpace& space,
    const CandidateOptions& options, Rng& rng) {
  ET_TRACE_SCOPE("core.candidates.build");
  std::vector<RowId> rows = options.restrict_to;
  if (rows.empty()) {
    rows.resize(rel.num_rows());
    for (RowId r = 0; r < rel.num_rows(); ++r) rows[r] = r;
  }
  if (rows.size() < 2) {
    return Status::InvalidArgument(
        "need at least two rows to form candidate pairs");
  }
  std::unordered_set<RowPair, RowPairHash> seen;

  // LHS-agreeing pairs per FD. Distinct FDs often share LHS attribute
  // sets; partition once per distinct LHS.
  std::unordered_set<uint32_t> done_lhs;
  for (const FD& fd : space.fds()) {
    if (!done_lhs.insert(fd.lhs.mask()).second) continue;
    std::shared_ptr<const Partition> part;
    if (options.cache != nullptr) {
      part = options.cache->Get(fd.lhs, rows);
    } else {
      part = std::make_shared<Partition>(
          Partition::Build(rel, fd.lhs, rows));
    }
    size_t taken = 0;
    for (const auto& cls : part->classes()) {
      for (size_t i = 0; i < cls.size() &&
                         (options.per_fd_limit == 0 ||
                          taken < options.per_fd_limit);
           ++i) {
        for (size_t j = i + 1; j < cls.size(); ++j) {
          seen.insert(RowPair(cls[i], cls[j]));
          if (++taken >= options.per_fd_limit &&
              options.per_fd_limit != 0) {
            break;
          }
        }
      }
      if (options.per_fd_limit != 0 && taken >= options.per_fd_limit) {
        break;
      }
    }
  }

  // Random filler pairs.
  for (size_t i = 0; i < options.random_pairs; ++i) {
    const RowId a = rows[rng.NextUint64(rows.size())];
    RowId b = rows[rng.NextUint64(rows.size())];
    if (a == b) continue;
    seen.insert(RowPair(a, b));
  }

  std::vector<RowPair> pool(seen.begin(), seen.end());
  std::sort(pool.begin(), pool.end());
  if (options.max_pairs != 0 && pool.size() > options.max_pairs) {
    rng.Shuffle(pool);
    pool.resize(options.max_pairs);
    std::sort(pool.begin(), pool.end());
  }
  if (pool.empty()) {
    return Status::FailedPrecondition("candidate pool is empty");
  }
  return pool;
}

}  // namespace et
