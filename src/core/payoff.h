// The game's payoff functions (Section 2 of the paper).
//
//   u_T(theta^T, pi^T)  — trainer: sum over labeled examples of
//                         theta^T(pi^T(x) | x).
//   u_a(theta^L, x)     — learner, per example: the probability the
//                         learner's belief assigns to the label it
//                         expects for x (its prediction confidence).
//   u_L = u_a - gamma * sum pi(x) ln pi(x)
//                       — learner, per policy: expected prediction
//                         payoff plus an entropy bonus rewarding
//                         representative, diverse example sets.

#ifndef ET_CORE_PAYOFF_H_
#define ET_CORE_PAYOFF_H_

#include <vector>

#include "belief/update.h"
#include "core/inference.h"

namespace et {

/// u_T: the trainer's payoff for its own labeling of the presented
/// pairs under its belief (per-tuple label probabilities summed).
double TrainerPayoff(const BeliefModel& trainer_belief, const Relation& rel,
                     const std::vector<LabeledPair>& labels,
                     const InferenceOptions& options = {});

/// u_a for one example pair: the learner's confidence in its own label
/// prediction, max_y theta(y|x), averaged over the pair's two tuples.
double LearnerExamplePayoff(const BeliefModel& learner_belief,
                            const Relation& rel, const RowPair& pair,
                            const InferenceOptions& options = {});

/// Realized u_a once the trainer's labels are known: theta^L(y|x) for
/// the actual labels, averaged per pair and summed over pairs.
double LearnerRealizedPayoff(const BeliefModel& learner_belief,
                             const Relation& rel,
                             const std::vector<LabeledPair>& labels,
                             const InferenceOptions& options = {});

/// u_L: expected example payoff under the selection distribution plus
/// gamma times its Shannon entropy. `probabilities` and
/// `example_payoffs` are parallel over the candidate set.
double LearnerPolicyPayoff(const std::vector<double>& probabilities,
                           const std::vector<double>& example_payoffs,
                           double gamma);

}  // namespace et

#endif  // ET_CORE_PAYOFF_H_
