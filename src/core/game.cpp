#include "core/game.h"

#include "common/logging.h"
#include "core/payoff.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robustness/fault.h"

namespace et {

std::vector<double> GameResult::MaeSeries() const {
  std::vector<double> out;
  out.reserve(iterations.size());
  for (const IterationRecord& it : iterations) out.push_back(it.mae);
  return out;
}

Game::Game(const Relation* rel, Trainer trainer, Learner learner,
           const GameOptions& options)
    : rel_(rel),
      trainer_(std::move(trainer)),
      learner_(std::move(learner)),
      options_(options) {
  ET_CHECK(rel_ != nullptr);
}

Result<GameResult> Game::Run(const IterationCallback& callback) {
  ET_TRACE_SCOPE("core.game.run");
  GameResult result;
  {
    ET_ASSIGN_OR_RETURN(double mae,
                        trainer_.belief().MAE(learner_.belief()));
    result.initial_mae = mae;
  }
  ConvergenceTracker trainer_track;
  ConvergenceTracker learner_track;

  for (size_t t = 1; t <= options_.iterations; ++t) {
    ET_TRACE_SCOPE("core.game.iteration");
    ET_COUNTER_INC("core.game.iterations");
    if (options_.abort_check) ET_RETURN_NOT_OK(options_.abort_check());
    if (!learner_.CanSelect(options_.pairs_per_iteration)) {
      if (options_.allow_early_exhaustion) {
        result.pool_exhausted = true;
        break;
      }
      return Status::FailedPrecondition(
          "candidate pool exhausted at iteration " + std::to_string(t));
    }
    ET_ASSIGN_OR_RETURN(
        std::vector<RowPair> pairs,
        learner_.SelectExamples(*rel_, options_.pairs_per_iteration));

    // Trainer learns from what it sees, then labels. The trainer is the
    // human annotator: a fired fault here models a dropped or timed-out
    // response, surfaced like any other failed interaction.
    ET_FAULT_POINT("annotator.respond");
    trainer_.Observe(*rel_, pairs);
    std::vector<LabeledPair> labels = trainer_.Label(*rel_, pairs);

    // Learner learns from the labels.
    learner_.Consume(*rel_, labels);

    ET_COUNTER_ADD("core.game.labels", labels.size());

    IterationRecord rec;
    rec.t = t;
    rec.labels = labels;
    ET_ASSIGN_OR_RETURN(rec.mae,
                        trainer_.belief().MAE(learner_.belief()));
    ET_GAUGE_SET("core.game.last_mae", rec.mae);
    rec.trainer_payoff = TrainerPayoff(trainer_.belief(), *rel_, labels,
                                       trainer_.options().inference);
    rec.learner_payoff =
        LearnerRealizedPayoff(learner_.belief(), *rel_, labels);
    rec.trainer_top_fd = trainer_.belief().Top1();
    rec.learner_top_fd = learner_.belief().Top1();

    // Empirical behaviour: the trainer's realized action is the rule it
    // labeled by; the learner's are the pairs it presented (ids = pair
    // hash reduced to the pool domain via the pair key itself).
    rec.trainer_drift = trainer_track.RecordIteration({rec.trainer_top_fd});
    std::vector<size_t> pair_ids;
    pair_ids.reserve(pairs.size());
    for (const RowPair& p : pairs) {
      pair_ids.push_back(PairActionId(p.first, p.second));
    }
    rec.learner_drift = learner_track.RecordIteration(pair_ids);

    result.iterations.push_back(rec);
    if (callback) callback(result.iterations.back());
  }
  return result;
}

}  // namespace et
