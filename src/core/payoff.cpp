#include "core/payoff.h"

#include <algorithm>
#include <cassert>

#include "common/math.h"

namespace et {

double TrainerPayoff(const BeliefModel& trainer_belief, const Relation& rel,
                     const std::vector<LabeledPair>& labels,
                     const InferenceOptions& options) {
  double payoff = 0.0;
  for (const LabeledPair& lp : labels) {
    const PairPrediction p =
        PredictPair(trainer_belief, rel, lp.pair, options);
    payoff += LabelProbability(p.first_dirty, lp.first_dirty);
    payoff += LabelProbability(p.second_dirty, lp.second_dirty);
  }
  return payoff;
}

double LearnerExamplePayoff(const BeliefModel& learner_belief,
                            const Relation& rel, const RowPair& pair,
                            const InferenceOptions& options) {
  const PairPrediction p = PredictPair(learner_belief, rel, pair, options);
  const double c1 = std::max(p.first_dirty, 1.0 - p.first_dirty);
  const double c2 = std::max(p.second_dirty, 1.0 - p.second_dirty);
  return 0.5 * (c1 + c2);
}

double LearnerRealizedPayoff(const BeliefModel& learner_belief,
                             const Relation& rel,
                             const std::vector<LabeledPair>& labels,
                             const InferenceOptions& options) {
  double payoff = 0.0;
  for (const LabeledPair& lp : labels) {
    const PairPrediction p =
        PredictPair(learner_belief, rel, lp.pair, options);
    payoff += 0.5 * (LabelProbability(p.first_dirty, lp.first_dirty) +
                     LabelProbability(p.second_dirty, lp.second_dirty));
  }
  return payoff;
}

double LearnerPolicyPayoff(const std::vector<double>& probabilities,
                           const std::vector<double>& example_payoffs,
                           double gamma) {
  assert(probabilities.size() == example_payoffs.size());
  double expected = 0.0;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    expected += probabilities[i] * example_payoffs[i];
  }
  return expected + gamma * Entropy(probabilities);
}

}  // namespace et
