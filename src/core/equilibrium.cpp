#include "core/equilibrium.h"

#include <cmath>

#include "common/math.h"
#include "core/payoff.h"

namespace et {

Result<double> LearnerPolicyValue(const BeliefModel& belief,
                                  const Relation& rel,
                                  const std::vector<RowPair>& candidates,
                                  const std::vector<double>& pi,
                                  double gamma,
                                  const InferenceOptions& options) {
  if (pi.size() != candidates.size()) {
    return Status::InvalidArgument("pi must be parallel to candidates");
  }
  double mass = 0.0;
  for (double p : pi) {
    if (p < -1e-12) {
      return Status::InvalidArgument("pi has negative mass");
    }
    mass += p;
  }
  if (std::fabs(mass - 1.0) > 1e-6) {
    return Status::InvalidArgument("pi must sum to 1");
  }
  std::vector<double> payoffs(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    payoffs[i] =
        LearnerExamplePayoff(belief, rel, candidates[i], options);
  }
  return LearnerPolicyPayoff(pi, payoffs, gamma);
}

std::vector<double> OptimalLearnerPolicy(
    const BeliefModel& belief, const Relation& rel,
    const std::vector<RowPair>& candidates, double gamma,
    const InferenceOptions& options) {
  std::vector<double> payoffs(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    payoffs[i] =
        LearnerExamplePayoff(belief, rel, candidates[i], options);
  }
  return Softmax(payoffs, gamma);
}

Result<double> LearnerPolicyRegret(const BeliefModel& belief,
                                   const Relation& rel,
                                   const std::vector<RowPair>& candidates,
                                   const std::vector<double>& pi,
                                   double gamma,
                                   const InferenceOptions& options) {
  const std::vector<double> best =
      OptimalLearnerPolicy(belief, rel, candidates, gamma, options);
  ET_ASSIGN_OR_RETURN(
      double best_value,
      LearnerPolicyValue(belief, rel, candidates, best, gamma, options));
  ET_ASSIGN_OR_RETURN(
      double pi_value,
      LearnerPolicyValue(belief, rel, candidates, pi, gamma, options));
  return best_value - pi_value;
}

bool TrainerLabelsAreBestResponse(const BeliefModel& trainer_belief,
                                  const Relation& rel,
                                  const std::vector<LabeledPair>& labels,
                                  double tolerance,
                                  const InferenceOptions& options) {
  for (const LabeledPair& lp : labels) {
    const PairPrediction p =
        PredictPair(trainer_belief, rel, lp.pair, options);
    const auto consistent = [&](double p_dirty, bool label) {
      const double chosen = LabelProbability(p_dirty, label);
      const double other = LabelProbability(p_dirty, !label);
      return chosen + tolerance >= other;
    };
    if (!consistent(p.first_dirty, lp.first_dirty)) return false;
    if (!consistent(p.second_dirty, lp.second_dirty)) return false;
  }
  return true;
}

}  // namespace et
