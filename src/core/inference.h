// Turning a belief into label predictions for tuple pairs — the bridge
// between beliefs theta and the game's payoffs/policies.
//
// Example 2 of the paper: an FD with violation measure m marks tuples of
// a violating pair dirty with probability 1 - m and tuples of a
// satisfying pair dirty with probability m. With confidence mu = 1 - m,
// a believed FD therefore contributes dirty-evidence mu on violation
// and 1 - mu on satisfaction. Evidence is mixed over the FDs the belief
// actually endorses (mean above 1/2), weighted by how strongly.

#ifndef ET_CORE_INFERENCE_H_
#define ET_CORE_INFERENCE_H_

#include "belief/belief_model.h"
#include "data/relation.h"
#include "fd/violations.h"

namespace et {

/// Predicted per-tuple dirty probabilities for one presented pair.
struct PairPrediction {
  double first_dirty = 0.0;
  double second_dirty = 0.0;
};

struct InferenceOptions {
  /// Restrict evidence to the belief's top_k FDs (0 = all FDs).
  size_t top_k = 0;
  /// Minimum confidence for an FD to contribute evidence; FDs the
  /// belief does not endorse stay silent.
  double min_confidence = 0.5;
};

/// Dirty probabilities of a pair's tuples under `belief`. A pair
/// inapplicable to every endorsed FD predicts clean (probability 0):
/// with no believed rule firing, there is no evidence of dirt.
PairPrediction PredictPair(const BeliefModel& belief, const Relation& rel,
                           const RowPair& pair,
                           const InferenceOptions& options = {});

/// theta(y | x): the probability the belief assigns to labeling
/// `dirty`/clean for one tuple whose predicted dirty probability is p.
inline double LabelProbability(double p_dirty, bool label_dirty) {
  return label_dirty ? p_dirty : 1.0 - p_dirty;
}

}  // namespace et

#endif  // ET_CORE_INFERENCE_H_
