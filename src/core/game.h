// The exploratory-training game loop (Section 2).
//
// Each interaction t: the learner presents k examples (pairs), the
// trainer observes them (updating its belief — P^T), labels them per
// its current belief (R^T), and the learner consumes the labels (P^L).
// The engine records per-iteration metrics: trainer/learner belief MAE,
// payoffs, empirical-behaviour drift, and optional F1 of the learner's
// error detection on a held-out test set.

#ifndef ET_CORE_GAME_H_
#define ET_CORE_GAME_H_

#include <functional>
#include <optional>
#include <vector>

#include "core/convergence.h"
#include "core/learner.h"
#include "core/trainer.h"

namespace et {

struct GameOptions {
  /// Number of interactions N (paper: 30).
  size_t iterations = 30;
  /// Pairs presented per interaction; the paper's sample of k = 10
  /// tuples corresponds to 5 pairs.
  size_t pairs_per_iteration = 5;
  /// Stop early when the pool cannot supply fresh pairs (otherwise the
  /// run fails). The paper's datasets are large enough to never hit
  /// this; small tests may.
  bool allow_early_exhaustion = true;
  /// Cooperative cancellation, checked before every interaction: a
  /// non-OK status aborts the run with that status (the harness wires a
  /// repetition watchdog through this).
  std::function<Status()> abort_check;
};

/// Everything measured in one interaction.
struct IterationRecord {
  size_t t = 0;
  std::vector<LabeledPair> labels;
  /// MAE between trainer and learner beliefs *after* the interaction.
  double mae = 0.0;
  /// Realized payoffs of the interaction.
  double trainer_payoff = 0.0;
  double learner_payoff = 0.0;
  /// Agents' current top FD (hypothesis-space index).
  size_t trainer_top_fd = 0;
  size_t learner_top_fd = 0;
  /// Empirical-behaviour drift of each agent (L1 on Phi_t).
  double trainer_drift = 0.0;
  double learner_drift = 0.0;
};

struct GameResult {
  std::vector<IterationRecord> iterations;
  /// MAE before any interaction (prior disagreement).
  double initial_mae = 0.0;
  bool pool_exhausted = false;

  std::vector<double> MaeSeries() const;
};

/// Callback invoked after every interaction, e.g. to compute held-out
/// F1; receives the current iteration record (mutable, to attach
/// nothing — it may inspect learner/trainer via captured state).
using IterationCallback = std::function<void(const IterationRecord&)>;

/// Runs the game to completion. The relation is shared, read-only
/// during the run.
class Game {
 public:
  Game(const Relation* rel, Trainer trainer, Learner learner,
       const GameOptions& options);

  /// Runs all iterations (or until pool exhaustion when allowed).
  Result<GameResult> Run(const IterationCallback& callback = nullptr);

  const Trainer& trainer() const { return trainer_; }
  const Learner& learner() const { return learner_; }

 private:
  const Relation* rel_;
  Trainer trainer_;
  Learner learner_;
  GameOptions options_;
};

}  // namespace et

#endif  // ET_CORE_GAME_H_
