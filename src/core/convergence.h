// Empirical behaviour and convergence (Definition 2 / Proposition 1).
//
// Phi_t^i — the empirical distribution of an agent's realized actions up
// to interaction t — converges when it stabilizes; the game converges to
// an equilibrium when both agents' empirical behaviours do. We track the
// trainer's action as its realized labeling rule (the top FD it labeled
// by) and the learner's as the selected pairs, and expose numerical
// stabilization tests used by the property suite.

#ifndef ET_CORE_CONVERGENCE_H_
#define ET_CORE_CONVERGENCE_H_

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

namespace et {

/// Running empirical distribution over a discrete action set identified
/// by integer ids.
class EmpiricalFrequency {
 public:
  /// Records one realized action.
  void Record(size_t action_id);

  size_t total() const { return total_; }

  /// Phi_t(action): occurrences / t. Zero for unseen actions.
  double Frequency(size_t action_id) const;

  /// L1 distance between this distribution and another over the union
  /// of their supports.
  double L1Distance(const EmpiricalFrequency& other) const;

  /// A copy of the current distribution (action -> frequency).
  std::unordered_map<size_t, double> Distribution() const;

  /// Raw occurrence counts (action -> count); with total(), the full
  /// state of the distribution — what session snapshots persist.
  const std::unordered_map<size_t, size_t>& counts() const {
    return counts_;
  }

  /// Replaces the distribution with previously captured counts.
  void Restore(std::unordered_map<size_t, size_t> counts, size_t total) {
    counts_ = std::move(counts);
    total_ = total;
  }

 private:
  std::unordered_map<size_t, size_t> counts_;
  size_t total_ = 0;
};

/// Action id of a labeled row pair, as recorded in the learner's
/// empirical behaviour Phi_t^L. Row ids fit comfortably in 20 bits for
/// every dataset the harness generates, so the xor-fold is injective in
/// practice; the one id scheme is shared by the offline game loop and
/// the serving layer so their drift series agree bit-for-bit.
inline size_t PairActionId(int first, int second) {
  return (static_cast<size_t>(first) << 20) ^ static_cast<size_t>(second);
}

/// Detects stabilization of a scalar series (e.g. the MAE curve or the
/// drift of Phi_t): converged when every successive difference within
/// the trailing `window` is below `tolerance`. Series shorter than
/// window+1 are not converged.
bool SeriesConverged(const std::vector<double>& series, size_t window,
                     double tolerance);

/// Per-iteration drift ||Phi_t - Phi_{t-1}||_1 tracker for one agent.
class ConvergenceTracker {
 public:
  /// Records the agent's realized action(s) this interaction and
  /// returns the drift of the empirical distribution.
  double RecordIteration(const std::vector<size_t>& action_ids);

  const std::vector<double>& drift_series() const { return drift_; }
  const EmpiricalFrequency& frequencies() const { return freq_; }

  /// Empirical behaviour converged: trailing drifts all below tol.
  bool Converged(size_t window, double tolerance) const {
    return SeriesConverged(drift_, window, tolerance);
  }

  /// Replaces the tracker's full state (frequency counts + drift
  /// series), for session restore.
  void Restore(std::unordered_map<size_t, size_t> counts, size_t total,
               std::vector<double> drift) {
    freq_.Restore(std::move(counts), total);
    drift_ = std::move(drift);
  }

 private:
  EmpiricalFrequency freq_;
  std::vector<double> drift_;
};

}  // namespace et

#endif  // ET_CORE_CONVERGENCE_H_
