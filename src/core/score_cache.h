// Incremental pair scoring: cache per-candidate predictions between
// rounds and recompute only the pairs a belief change actually touched.
//
// A fictitious-play update after one round of labels moves the Betas of
// the few FDs those pairs were applicable to; every other FD's
// confidence — and therefore every candidate whose applicable-FD set is
// disjoint from the changed set — scores exactly as it did last round.
// PairScoreCache pairs the BeliefModel's epoch counters (which Betas
// changed since the last sync) with the PairComplianceMatrix's packed
// applicable bits (which FDs each pool pair touches) to invalidate
// stale candidates with one word-wide AND per pair, then recomputes
// only those.
//
// Bit-identity: a recomputed pair runs the IDENTICAL accumulation loop
// as PredictPair — same FD order, same expressions — with compliance
// read from the bit-matrix instead of CheckPair (asserted equal by
// fd/pair_compliance_test). Cached values were produced by that same
// loop earlier, so incremental scoring returns the same doubles as a
// full recompute, bit for bit. tests/core/incremental_scoring_test
// asserts this for every policy over 50 rounds at --threads={1,4}.
//
// Protocol: call BeginBatch(belief, options) serially before a scoring
// pass, then Predict(row) freely from parallel workers — each row
// writes only its own cache slot. Counters: core.score.incremental
// (served from cache) and core.score.full (recomputed).

#ifndef ET_CORE_SCORE_CACHE_H_
#define ET_CORE_SCORE_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "belief/belief_model.h"
#include "core/inference.h"
#include "fd/pair_compliance.h"

namespace et {

/// PredictPair evaluated against a compliance matrix row instead of
/// CheckPair calls: identical arithmetic, identical result, no
/// per-attribute cell walks. Used for beliefs without a score cache
/// (e.g. query-by-committee members, which change every draw).
PairPrediction PredictPairWithMatrix(const BeliefModel& belief,
                                     const PairComplianceMatrix& matrix,
                                     size_t row,
                                     const InferenceOptions& options);

class PairScoreCache {
 public:
  explicit PairScoreCache(std::shared_ptr<const PairComplianceMatrix> matrix);

  const PairComplianceMatrix& matrix() const { return *matrix_; }

  /// Syncs with the belief before a scoring pass (serial; call before
  /// fanning Predict() out to workers). Invalidates the cached
  /// prediction of every pair applicable to an FD whose Beta changed
  /// since the previous BeginBatch; a different belief object, changed
  /// inference options, or a changed top-k ranking invalidates all.
  void BeginBatch(const BeliefModel& belief, const InferenceOptions& options);

  /// Prediction for pool pair `row` (an index into matrix().pair()).
  /// Thread-safe after BeginBatch: distinct rows touch distinct slots.
  PairPrediction Predict(size_t row);

 private:
  std::shared_ptr<const PairComplianceMatrix> matrix_;

  // Batch state, rebuilt by BeginBatch.
  const BeliefModel* synced_belief_ = nullptr;
  uint64_t synced_epoch_ = 0;
  InferenceOptions options_{};
  bool use_top_k_ = false;
  std::vector<size_t> top_k_;      // iteration order when use_top_k_
  std::vector<uint8_t> endorsed_;  // mu >= min_confidence, per FD
  std::vector<uint64_t> endorsed_words_;  // same, packed like the matrix
  std::vector<double> w_;          // endorsement weight, per FD
  std::vector<double> mu_;         // confidence snapshot, per FD

  // Per-pair cache. valid_ is uint8_t (not vector<bool>) so parallel
  // workers can flag distinct slots without racing on shared words.
  std::vector<PairPrediction> cached_;
  std::vector<uint8_t> valid_;
};

}  // namespace et

#endif  // ET_CORE_SCORE_CACHE_H_
