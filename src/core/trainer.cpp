#include "core/trainer.h"

#include "fd/g1.h"
#include "obs/trace.h"

namespace et {

Trainer::Trainer(BeliefModel prior, const TrainerOptions& options,
                 uint64_t seed)
    : belief_(std::move(prior)), options_(options), rng_(seed) {
  if (options_.prediction == TrainerPrediction::kHypothesisTesting) {
    ht_current_ = belief_.Top1();
    HtRebuildProxyBelief();
  }
}

double Trainer::HtViolationRate(const Relation& rel, size_t idx) const {
  const FD& fd = belief_.space().fd(idx);
  size_t applicable = 0;
  size_t violating = 0;
  for (const auto& interaction : ht_window_) {
    for (const RowPair& p : interaction) {
      switch (CheckPair(rel, fd, p.first, p.second)) {
        case PairCompliance::kSatisfies:
          ++applicable;
          break;
        case PairCompliance::kViolates:
          ++applicable;
          ++violating;
          break;
        case PairCompliance::kInapplicable:
          break;
      }
    }
  }
  if (applicable == 0) return 0.0;
  return static_cast<double>(violating) / static_cast<double>(applicable);
}

void Trainer::HtRebuildProxyBelief() {
  // The HT trainer's "belief" for payoff/MAE purposes: confident in the
  // working hypothesis, dismissive of the rest.
  const double strength = 20.0;
  for (size_t i = 0; i < belief_.size(); ++i) {
    const double mean = (i == ht_current_)
                            ? options_.ht_current_confidence
                            : options_.ht_other_confidence;
    belief_.beta(i) = Beta(mean * strength, (1.0 - mean) * strength);
  }
}

void Trainer::HtObserve(const Relation& rel,
                        const std::vector<RowPair>& pairs) {
  ht_window_.push_back(pairs);
  while (ht_window_.size() > options_.ht_window) ht_window_.pop_front();
  if (HtViolationRate(rel, ht_current_) > options_.ht_tolerance) {
    double best_rate = HtViolationRate(rel, ht_current_);
    size_t best = ht_current_;
    for (size_t i = 0; i < belief_.size(); ++i) {
      const double rate = HtViolationRate(rel, i);
      if (rate < best_rate) {
        best_rate = rate;
        best = i;
      }
    }
    ht_current_ = best;
  }
  HtRebuildProxyBelief();
}

void Trainer::Observe(const Relation& rel,
                      const std::vector<RowPair>& pairs) {
  if (!options_.learns) return;
  if (options_.prediction == TrainerPrediction::kHypothesisTesting) {
    HtObserve(rel, pairs);
    return;
  }
  UpdateFromObservation(&belief_, rel, pairs);
}

std::vector<LabeledPair> Trainer::Label(
    const Relation& rel, const std::vector<RowPair>& pairs) {
  ET_TRACE_SCOPE("core.trainer.label");
  std::vector<LabeledPair> out;
  out.reserve(pairs.size());
  for (const RowPair& pair : pairs) {
    const PairPrediction p =
        PredictPair(belief_, rel, pair, options_.inference);
    LabeledPair lp;
    lp.pair = pair;
    lp.first_dirty = p.first_dirty > 0.5;
    lp.second_dirty = p.second_dirty > 0.5;
    if (options_.label_noise > 0.0) {
      if (rng_.NextBernoulli(options_.label_noise)) {
        lp.first_dirty = !lp.first_dirty;
      }
      if (rng_.NextBernoulli(options_.label_noise)) {
        lp.second_dirty = !lp.second_dirty;
      }
    }
    out.push_back(lp);
  }
  return out;
}

}  // namespace et
