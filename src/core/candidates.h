// Candidate-pair pool construction.
//
// FD violations are defined over pairs of tuples, so the paper modifies
// every sampling method to select a *pair* instead of a single tuple
// (App. C.1). The informative pairs are those agreeing on the LHS of at
// least one hypothesis-space FD; random filler pairs are added for
// coverage so Fixed Random Sampling is not artificially advantaged.

#ifndef ET_CORE_CANDIDATES_H_
#define ET_CORE_CANDIDATES_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/relation.h"
#include "fd/hypothesis_space.h"
#include "fd/violations.h"

namespace et {

class EvalCache;

struct CandidateOptions {
  /// Cap on LHS-agreeing pairs gathered per FD (0 = unlimited).
  size_t per_fd_limit = 200;
  /// Cap on the total pool; excess is randomly subsampled.
  size_t max_pairs = 4000;
  /// Uniformly random filler pairs appended (deduplicated).
  size_t random_pairs = 200;
  /// When set, restrict all pairs to these rows (the training side of a
  /// split). Empty = all rows.
  std::vector<RowId> restrict_to;
  /// Optional shared partition cache wrapping the same relation; LHS
  /// partitions then come from (and are shared through) it instead of
  /// being rebuilt per distinct LHS.
  EvalCache* cache = nullptr;
};

/// Builds the deduplicated candidate pool. Requires a relation with at
/// least two (restricted) rows.
Result<std::vector<RowPair>> BuildCandidatePairs(
    const Relation& rel, const HypothesisSpace& space,
    const CandidateOptions& options, Rng& rng);

}  // namespace et

#endif  // ET_CORE_CANDIDATES_H_
