#include "core/score_cache.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace et {

PairPrediction PredictPairWithMatrix(const BeliefModel& belief,
                                     const PairComplianceMatrix& matrix,
                                     size_t row,
                                     const InferenceOptions& options) {
  ET_COUNTER_INC("core.inference.predictions");
  double num = 0.0;
  double den = 0.0;
  // Mirrors PredictPair's accumulate lambda expression for expression;
  // only the compliance lookup differs.
  auto accumulate = [&](size_t idx) {
    const double mu = belief.Confidence(idx);
    if (mu < options.min_confidence) return;
    const PairCompliance c = matrix.Compliance(row, idx);
    if (c == PairCompliance::kInapplicable) return;
    const double w = (mu - options.min_confidence) /
                     (1.0 - options.min_confidence);
    const double evidence =
        (c == PairCompliance::kViolates) ? mu : 1.0 - mu;
    num += w * evidence;
    den += w;
  };
  const size_t size = matrix.num_fds();
  if (options.top_k == 0 || options.top_k >= size) {
    for (size_t idx = 0; idx < size; ++idx) accumulate(idx);
  } else {
    for (size_t idx : belief.TopK(options.top_k)) accumulate(idx);
  }
  PairPrediction out;
  if (den > 0.0) {
    const double p = std::clamp(num / den, 0.0, 1.0);
    out.first_dirty = p;
    out.second_dirty = p;
  }
  return out;
}

PairScoreCache::PairScoreCache(
    std::shared_ptr<const PairComplianceMatrix> matrix)
    : matrix_(std::move(matrix)) {
  ET_CHECK(matrix_ != nullptr);
  cached_.resize(matrix_->num_pairs());
  valid_.assign(matrix_->num_pairs(), 0);
}

void PairScoreCache::BeginBatch(const BeliefModel& belief,
                                const InferenceOptions& options) {
  const size_t num_fds = matrix_->num_fds();
  ET_CHECK(belief.size() == num_fds)
      << "score cache matrix and belief disagree on hypothesis space size";

  bool invalidate_all =
      synced_belief_ != &belief ||
      options.top_k != options_.top_k ||
      options.min_confidence != options_.min_confidence;

  // Snapshot confidences and endorsement weights; Predict reads these
  // instead of the belief so workers never touch shared mutable state.
  // The previous batch's endorsement bits survive in prev_endorsed:
  // a dirty FD endorsed in neither batch contributed nothing to any
  // cached value and contributes nothing to a recompute, so it need
  // not invalidate the pairs it is applicable to.
  std::vector<uint64_t> prev_endorsed;
  prev_endorsed.swap(endorsed_words_);
  mu_.resize(num_fds);
  w_.resize(num_fds);
  endorsed_.resize(num_fds);
  endorsed_words_.assign(matrix_->words_per_pair(), 0);
  for (size_t f = 0; f < num_fds; ++f) {
    const double mu = belief.Confidence(f);
    mu_[f] = mu;
    endorsed_[f] = mu < options.min_confidence ? 0 : 1;
    if (endorsed_[f]) endorsed_words_[f >> 6] |= uint64_t{1} << (f & 63);
    w_[f] = (mu - options.min_confidence) / (1.0 - options.min_confidence);
  }

  const bool use_top_k = options.top_k != 0 && options.top_k < num_fds;
  if (use_top_k) {
    // The accumulation order is the top-k ranking, so a reshuffled
    // ranking changes every sum: invalidate everything unless the
    // ranked index sequence is exactly what it was last batch.
    std::vector<size_t> ranked = belief.TopK(options.top_k);
    if (!use_top_k_ || ranked != top_k_) invalidate_all = true;
    top_k_ = std::move(ranked);
  } else {
    top_k_.clear();
  }
  use_top_k_ = use_top_k;

  if (invalidate_all) {
    std::fill(valid_.begin(), valid_.end(), uint8_t{0});
  } else if (belief.epoch() > synced_epoch_) {
    const size_t words = matrix_->words_per_pair();
    std::vector<uint64_t> dirty(words, 0);
    for (size_t f = 0; f < num_fds; ++f) {
      if (belief.fd_epoch(f) > synced_epoch_) {
        dirty[f >> 6] |= uint64_t{1} << (f & 63);
      }
    }
    // Drop dirty FDs endorsed in neither batch: Predict skipped them
    // before and skips them now, so their Beta moving cannot change
    // any cached sum (bit-identity is untouched by keeping the slot).
    for (size_t word = 0; word < words; ++word) {
      dirty[word] &= prev_endorsed[word] | endorsed_words_[word];
    }
    for (size_t row = 0; row < valid_.size(); ++row) {
      if (valid_[row] && matrix_->IntersectsDirty(row, dirty.data())) {
        valid_[row] = 0;
      }
    }
  }

  synced_belief_ = &belief;
  synced_epoch_ = belief.epoch();
  options_ = options;
}

PairPrediction PairScoreCache::Predict(size_t row) {
  if (valid_[row]) {
    ET_COUNTER_INC("core.score.incremental");
    return cached_[row];
  }
  ET_COUNTER_INC("core.score.full");
  double num = 0.0;
  double den = 0.0;
  // The exact accumulation PredictPair runs — same ascending FD order,
  // same expressions on the same confidence values — so a recomputed
  // slot is bit-identical to the uncached path. The full-space loop
  // walks set bits of applicable ∧ endorsed instead of branching per
  // FD; the skipped FDs are exactly the ones PredictPair's `continue`s
  // skip, so the float stream is unchanged.
  if (use_top_k_) {
    for (size_t idx : top_k_) {
      if (!endorsed_[idx]) continue;
      const PairCompliance c = matrix_->Compliance(row, idx);
      if (c == PairCompliance::kInapplicable) continue;
      const double evidence =
          (c == PairCompliance::kViolates) ? mu_[idx] : 1.0 - mu_[idx];
      num += w_[idx] * evidence;
      den += w_[idx];
    }
  } else {
    const uint64_t* applicable = matrix_->applicable_words(row);
    const uint64_t* violates = matrix_->violates_words(row);
    const size_t words = matrix_->words_per_pair();
    for (size_t word = 0; word < words; ++word) {
      uint64_t bits = applicable[word] & endorsed_words_[word];
      while (bits != 0) {
        const int bit = __builtin_ctzll(bits);
        bits &= bits - 1;
        const size_t idx = (word << 6) + static_cast<size_t>(bit);
        const double evidence = ((violates[word] >> bit) & 1)
                                    ? mu_[idx]
                                    : 1.0 - mu_[idx];
        num += w_[idx] * evidence;
        den += w_[idx];
      }
    }
  }
  PairPrediction out;
  if (den > 0.0) {
    const double p = std::clamp(num / den, 0.0, 1.0);
    out.first_dirty = p;
    out.second_dirty = p;
  }
  cached_[row] = out;
  valid_[row] = 1;
  return out;
}

}  // namespace et
