#include "core/inference.h"

#include <algorithm>

#include "fd/g1.h"
#include "obs/metrics.h"

namespace et {

PairPrediction PredictPair(const BeliefModel& belief, const Relation& rel,
                           const RowPair& pair,
                           const InferenceOptions& options) {
  // Counter only: PredictPair runs per candidate pair per iteration and
  // is too hot for a timed span.
  ET_COUNTER_INC("core.inference.predictions");
  const HypothesisSpace& space = belief.space();
  double num = 0.0;
  double den = 0.0;
  auto accumulate = [&](size_t idx) {
    const double mu = belief.Confidence(idx);
    if (mu < options.min_confidence) return;
    const PairCompliance c =
        CheckPair(rel, space.fd(idx), pair.first, pair.second);
    if (c == PairCompliance::kInapplicable) return;
    // Endorsement weight: how far above indifference the belief sits.
    const double w = (mu - options.min_confidence) /
                     (1.0 - options.min_confidence);
    const double evidence =
        (c == PairCompliance::kViolates) ? mu : 1.0 - mu;
    num += w * evidence;
    den += w;
  };
  if (options.top_k == 0 || options.top_k >= space.size()) {
    // Full space: iterate directly instead of materializing an index
    // vector — PredictPair runs per candidate pair per iteration.
    for (size_t idx = 0; idx < space.size(); ++idx) accumulate(idx);
  } else {
    for (size_t idx : belief.TopK(options.top_k)) accumulate(idx);
  }
  PairPrediction out;
  if (den > 0.0) {
    const double p = std::clamp(num / den, 0.0, 1.0);
    // FD violations implicate both tuples symmetrically (Example 2).
    out.first_dirty = p;
    out.second_dirty = p;
  }
  return out;
}

}  // namespace et
