#include "core/policies.h"

#include <algorithm>
#include <numeric>

#include "common/math.h"
#include "common/thread_pool.h"
#include "core/payoff.h"
#include "core/score_cache.h"
#include "fd/g1.h"
#include "obs/trace.h"

namespace et {

const char* PolicyKindToString(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kRandom:
      return "Random";
    case PolicyKind::kUncertainty:
      return "US";
    case PolicyKind::kStochasticBestResponse:
      return "StochasticBR";
    case PolicyKind::kStochasticUncertainty:
      return "StochasticUS";
    case PolicyKind::kQueryByCommittee:
      return "QBC";
    case PolicyKind::kDensityWeightedUncertainty:
      return "DensityUS";
  }
  return "?";
}

Result<std::vector<RowPair>> ResponsePolicy::SelectPairs(
    const BeliefModel& belief, const Relation& rel,
    const std::vector<RowPair>& candidates, size_t k, Rng& rng,
    PairScoreCache* scorer) const {
  if (k > candidates.size()) {
    return Status::InvalidArgument(
        "cannot select " + std::to_string(k) + " pairs from pool of " +
        std::to_string(candidates.size()));
  }
  std::vector<double> weights = Distribution(belief, rel, candidates, scorer);
  // Distribution weights are non-negative, so an IEEE sum of them only
  // vanishes when no entry is positive: tracking the positive-entry
  // count replaces the per-draw O(n) re-sum (and the chosen flags
  // replace the per-pair std::find) without moving the rng stream —
  // NextDiscrete sees the same weight vectors and totals as before.
  std::vector<uint8_t> chosen(weights.size(), 0);
  size_t positive = 0;
  for (double w : weights) positive += w > 0.0;
  std::vector<RowPair> out;
  out.reserve(k);
  for (size_t draw = 0; draw < k; ++draw) {
    if (positive == 0) {
      // Remaining mass exhausted numerically: fall back to uniform over
      // the not-yet-chosen candidates.
      size_t open = 0;
      for (size_t i = 0; i < weights.size(); ++i) {
        weights[i] = chosen[i] ? 0.0 : 1.0;
        open += !chosen[i];
      }
      if (open == 0) break;
      positive = open;
    }
    const size_t idx = rng.NextDiscrete(weights);
    out.push_back(candidates[idx]);
    chosen[idx] = 1;
    if (weights[idx] > 0.0) --positive;
    weights[idx] = 0.0;
  }
  return out;
}

namespace {

class RandomPolicy final : public ResponsePolicy {
 public:
  PolicyKind kind() const override { return PolicyKind::kRandom; }

  std::vector<double> Distribution(
      const BeliefModel&, const Relation&,
      const std::vector<RowPair>& candidates,
      PairScoreCache*) const override {
    if (candidates.empty()) return {};
    return std::vector<double>(candidates.size(),
                               1.0 / static_cast<double>(candidates.size()));
  }
};

// Shared scoring helpers. Each candidate's score is independent
// (hypothesis-space-wide prediction per pair) and written to its own
// slot, so the parallel scan is bit-identical to a serial one. With a
// scorer the prediction comes from the incremental cache (synced
// serially via BeginBatch before the fan-out); candidates outside the
// scorer's pool — there should be none, but revisit extensions could
// introduce them — fall back to the direct path.
PairPrediction Predict(const BeliefModel& belief, const Relation& rel,
                       const RowPair& pair, const InferenceOptions& inference,
                       PairScoreCache* scorer) {
  if (scorer != nullptr) {
    const size_t row = scorer->matrix().IndexOf(pair);
    if (row != PairComplianceMatrix::kNotInPool) return scorer->Predict(row);
  }
  return PredictPair(belief, rel, pair, inference);
}

std::vector<double> PayoffScores(const BeliefModel& belief,
                                 const Relation& rel,
                                 const std::vector<RowPair>& candidates,
                                 const InferenceOptions& inference,
                                 PairScoreCache* scorer) {
  if (scorer != nullptr) scorer->BeginBatch(belief, inference);
  std::vector<double> s(candidates.size());
  ParallelFor(candidates.size(), [&](size_t begin, size_t end) {
    // Chunk-level span (not per-candidate): visible per pool worker in
    // a trace, tagged with the originating request id when serving.
    ET_TRACE_SCOPE("core.policy.score_chunk");
    for (size_t i = begin; i < end; ++i) {
      const PairPrediction p =
          Predict(belief, rel, candidates[i], inference, scorer);
      // LearnerExamplePayoff's expression on the cached prediction.
      const double c1 = std::max(p.first_dirty, 1.0 - p.first_dirty);
      const double c2 = std::max(p.second_dirty, 1.0 - p.second_dirty);
      s[i] = 0.5 * (c1 + c2);
    }
  });
  return s;
}

std::vector<double> EntropyScores(const BeliefModel& belief,
                                  const Relation& rel,
                                  const std::vector<RowPair>& candidates,
                                  const InferenceOptions& inference,
                                  PairScoreCache* scorer) {
  if (scorer != nullptr) scorer->BeginBatch(belief, inference);
  std::vector<double> s(candidates.size());
  ParallelFor(candidates.size(), [&](size_t begin, size_t end) {
    ET_TRACE_SCOPE("core.policy.score_chunk");
    for (size_t i = begin; i < end; ++i) {
      const PairPrediction p =
          Predict(belief, rel, candidates[i], inference, scorer);
      s[i] = 0.5 * (BinaryEntropy(p.first_dirty) +
                    BinaryEntropy(p.second_dirty));
    }
  });
  return s;
}

class UncertaintyPolicy final : public ResponsePolicy {
 public:
  explicit UncertaintyPolicy(InferenceOptions inference)
      : inference_(inference) {}

  PolicyKind kind() const override { return PolicyKind::kUncertainty; }

  std::vector<double> Distribution(
      const BeliefModel& belief, const Relation& rel,
      const std::vector<RowPair>& candidates,
      PairScoreCache* scorer) const override {
    // Deterministic policy: all mass on the argmax (ties split evenly),
    // which is also what the empirical-frequency tracker should see.
    std::vector<double> s =
        EntropyScores(belief, rel, candidates, inference_, scorer);
    std::vector<double> out(candidates.size(), 0.0);
    if (candidates.empty()) return out;
    const double best = *std::max_element(s.begin(), s.end());
    size_t ties = 0;
    for (double v : s) ties += (v == best);
    for (size_t i = 0; i < s.size(); ++i) {
      if (s[i] == best) out[i] = 1.0 / static_cast<double>(ties);
    }
    return out;
  }

  Result<std::vector<RowPair>> SelectPairs(
      const BeliefModel& belief, const Relation& rel,
      const std::vector<RowPair>& candidates, size_t k, Rng& rng,
      PairScoreCache* scorer) const override {
    if (k > candidates.size()) {
      return Status::InvalidArgument("pool smaller than k");
    }
    // Greedy top-k by entropy score; ties broken by pool order for
    // determinism (rng unused).
    (void)rng;
    std::vector<double> s =
        EntropyScores(belief, rel, candidates, inference_, scorer);
    std::vector<size_t> idx(candidates.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(),
                     [&](size_t a, size_t b) { return s[a] > s[b]; });
    std::vector<RowPair> out;
    out.reserve(k);
    for (size_t i = 0; i < k; ++i) out.push_back(candidates[idx[i]]);
    return out;
  }

 private:
  InferenceOptions inference_;
};

class SoftmaxPolicy : public ResponsePolicy {
 public:
  SoftmaxPolicy(double gamma, InferenceOptions inference)
      : gamma_(gamma), inference_(inference) {}

  std::vector<double> Distribution(
      const BeliefModel& belief, const Relation& rel,
      const std::vector<RowPair>& candidates,
      PairScoreCache* scorer) const override {
    if (candidates.empty()) return {};
    return Softmax(Scores(belief, rel, candidates, scorer), gamma_);
  }

 protected:
  virtual std::vector<double> Scores(
      const BeliefModel& belief, const Relation& rel,
      const std::vector<RowPair>& candidates,
      PairScoreCache* scorer) const = 0;

  double gamma_;
  InferenceOptions inference_;
};

class StochasticBestResponsePolicy final : public SoftmaxPolicy {
 public:
  using SoftmaxPolicy::SoftmaxPolicy;

  PolicyKind kind() const override {
    return PolicyKind::kStochasticBestResponse;
  }

 protected:
  std::vector<double> Scores(
      const BeliefModel& belief, const Relation& rel,
      const std::vector<RowPair>& candidates,
      PairScoreCache* scorer) const override {
    return PayoffScores(belief, rel, candidates, inference_, scorer);
  }
};

class StochasticUncertaintyPolicy final : public SoftmaxPolicy {
 public:
  using SoftmaxPolicy::SoftmaxPolicy;

  PolicyKind kind() const override {
    return PolicyKind::kStochasticUncertainty;
  }

 protected:
  std::vector<double> Scores(
      const BeliefModel& belief, const Relation& rel,
      const std::vector<RowPair>& candidates,
      PairScoreCache* scorer) const override {
    return EntropyScores(belief, rel, candidates, inference_, scorer);
  }
};

// Query-by-committee: sample `committee_size` point beliefs from the
// Beta posteriors, let each vote the pair's labels under its own
// confidences, and score pairs by vote entropy. A committee that
// agrees everywhere marks a settled model; disagreement marks pairs
// whose labels the posterior genuinely does not pin down yet.
class QueryByCommitteePolicy final : public SoftmaxPolicy {
 public:
  QueryByCommitteePolicy(double gamma, InferenceOptions inference,
                         size_t committee_size, uint64_t seed)
      : SoftmaxPolicy(gamma, inference),
        committee_size_(committee_size),
        rng_(seed) {}

  PolicyKind kind() const override {
    return PolicyKind::kQueryByCommittee;
  }

 protected:
  std::vector<double> Scores(
      const BeliefModel& belief, const Relation& rel,
      const std::vector<RowPair>& candidates,
      PairScoreCache* scorer) const override {
    // Draw the committee: per member, a full confidence vector sampled
    // from the Beta posteriors, wrapped into a point-mass BeliefModel
    // (large pseudo-counts pin the means at the samples).
    std::vector<BeliefModel> committee;
    committee.reserve(committee_size_);
    for (size_t m = 0; m < committee_size_; ++m) {
      std::vector<Beta> betas;
      betas.reserve(belief.size());
      for (size_t i = 0; i < belief.size(); ++i) {
        const double sample =
            std::clamp(belief.beta(i).Sample(rng_), 1e-3, 1.0 - 1e-3);
        betas.push_back(Beta(sample * 1e6, (1.0 - sample) * 1e6));
      }
      committee.emplace_back(belief.space_ptr(), std::move(betas));
    }
    // The committee is drawn serially above (mutable rng_); scoring it
    // over the pool is read-only and parallel. Members change every
    // draw so their predictions cannot be cached across rounds, but the
    // compliance matrix still replaces the per-FD CheckPair walks.
    const PairComplianceMatrix* matrix =
        scorer != nullptr ? &scorer->matrix() : nullptr;
    std::vector<double> scores(candidates.size(), 0.0);
    ParallelFor(candidates.size(), [&](size_t begin, size_t end) {
      for (size_t c = begin; c < end; ++c) {
        const size_t row = matrix != nullptr
                               ? matrix->IndexOf(candidates[c])
                               : PairComplianceMatrix::kNotInPool;
        size_t dirty_votes = 0;
        for (const BeliefModel& member : committee) {
          const PairPrediction p =
              row != PairComplianceMatrix::kNotInPool
                  ? PredictPairWithMatrix(member, *matrix, row, inference_)
                  : PredictPair(member, rel, candidates[c], inference_);
          dirty_votes += p.first_dirty > 0.5;
        }
        const double share = static_cast<double>(dirty_votes) /
                             static_cast<double>(committee_size_);
        scores[c] = BinaryEntropy(share);
      }
    });
    return scores;
  }

 private:
  size_t committee_size_;
  mutable Rng rng_;
};

// Density-weighted uncertainty: entropy scaled by the number of
// hypothesis-space FDs the pair carries evidence for. Representative
// pairs teach the learner about many rules at once.
class DensityWeightedUncertaintyPolicy final : public SoftmaxPolicy {
 public:
  using SoftmaxPolicy::SoftmaxPolicy;

  PolicyKind kind() const override {
    return PolicyKind::kDensityWeightedUncertainty;
  }

 protected:
  std::vector<double> Scores(
      const BeliefModel& belief, const Relation& rel,
      const std::vector<RowPair>& candidates,
      PairScoreCache* scorer) const override {
    const HypothesisSpace& space = belief.space();
    std::vector<double> entropy =
        EntropyScores(belief, rel, candidates, inference_, scorer);
    const PairComplianceMatrix* matrix =
        scorer != nullptr ? &scorer->matrix() : nullptr;
    ParallelFor(candidates.size(), [&](size_t begin, size_t end) {
      for (size_t c = begin; c < end; ++c) {
        size_t applicable = 0;
        const size_t row = matrix != nullptr
                               ? matrix->IndexOf(candidates[c])
                               : PairComplianceMatrix::kNotInPool;
        if (row != PairComplianceMatrix::kNotInPool) {
          applicable = matrix->ApplicableCount(row);
        } else {
          for (const FD& fd : space.fds()) {
            if (CheckPair(rel, fd, candidates[c].first,
                          candidates[c].second) !=
                PairCompliance::kInapplicable) {
              ++applicable;
            }
          }
        }
        const double density = static_cast<double>(applicable) /
                               static_cast<double>(space.size());
        entropy[c] *= density;
      }
    });
    return entropy;
  }
};

}  // namespace

std::unique_ptr<ResponsePolicy> MakePolicy(PolicyKind kind,
                                           const PolicyOptions& options) {
  switch (kind) {
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>();
    case PolicyKind::kUncertainty:
      return std::make_unique<UncertaintyPolicy>(options.inference);
    case PolicyKind::kStochasticBestResponse:
      return std::make_unique<StochasticBestResponsePolicy>(
          options.gamma, options.inference);
    case PolicyKind::kStochasticUncertainty:
      return std::make_unique<StochasticUncertaintyPolicy>(
          options.gamma, options.inference);
    case PolicyKind::kQueryByCommittee:
      return std::make_unique<QueryByCommitteePolicy>(
          options.gamma, options.inference, options.committee_size,
          options.committee_seed);
    case PolicyKind::kDensityWeightedUncertainty:
      return std::make_unique<DensityWeightedUncertaintyPolicy>(
          options.gamma, options.inference);
  }
  return nullptr;
}

std::vector<PolicyKind> AllPolicyKinds() {
  return {PolicyKind::kRandom, PolicyKind::kUncertainty,
          PolicyKind::kStochasticBestResponse,
          PolicyKind::kStochasticUncertainty};
}

std::vector<PolicyKind> ExtendedPolicyKinds() {
  std::vector<PolicyKind> kinds = AllPolicyKinds();
  kinds.push_back(PolicyKind::kQueryByCommittee);
  kinds.push_back(PolicyKind::kDensityWeightedUncertainty);
  return kinds;
}

}  // namespace et
