// FD-based data repair — the downstream consumer of learned approximate
// FDs (App. A.1: "this learned approximate FDs can be used for
// detecting errors...", citing the repair literature).
//
// The engine implements equivalence-class repair: for each trusted FD
// X -> A and each X-equivalence class whose A-values disagree, restore
// consistency by rewriting the minority A-cells to the class's
// plurality value. FDs are applied in decreasing confidence order;
// confidence also gates which FDs are trusted at all. The paper's
// pipeline learns the confidences interactively (core/), then this
// module turns them into concrete fixes.

#ifndef ET_REPAIR_REPAIR_H_
#define ET_REPAIR_REPAIR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "fd/error_detector.h"
#include "fd/violations.h"

namespace et {

/// One proposed cell rewrite.
struct RepairAction {
  Cell cell;
  std::string old_value;
  std::string new_value;
  /// The FD that motivated the rewrite.
  FD cause;
  /// Confidence of that FD when the action was proposed.
  double confidence = 0.0;
};

struct RepairOptions {
  /// Only FDs with confidence >= trust_threshold drive repairs.
  double trust_threshold = 0.8;
  /// Minimum plurality share within an equivalence class for its
  /// majority value to overwrite the minority (protects classes where
  /// no value dominates: rewriting a 50/50 split is a coin flip).
  double min_majority = 0.5;
  /// Repeat repair passes until no action fires (a fix for one FD can
  /// expose violations of another) up to this many rounds.
  size_t max_passes = 3;
};

/// The outcome of RepairRelation.
struct RepairResult {
  /// Actions actually applied, in application order.
  std::vector<RepairAction> actions;
  /// Violating pairs across the trusted FDs before and after.
  uint64_t violations_before = 0;
  uint64_t violations_after = 0;

  size_t cost() const { return actions.size(); }
};

/// Proposes the repair actions one pass over `fds` would apply, without
/// mutating the relation. FDs below the trust threshold are skipped.
std::vector<RepairAction> SuggestRepairs(const Relation& rel,
                                         const std::vector<WeightedFD>& fds,
                                         const RepairOptions& options = {});

/// Applies equivalence-class repair in place. Deterministic: FDs are
/// processed by descending confidence (ties: FD order), classes in
/// partition order, plurality ties by dictionary-code order.
Result<RepairResult> RepairRelation(Relation* rel,
                                    const std::vector<WeightedFD>& fds,
                                    const RepairOptions& options = {});

/// Scores a repair against ground truth when the pristine relation is
/// available (our error generator keeps it): of the cells the repair
/// changed, how many were truly dirty (precision), how many dirty
/// cells were restored to their original value (corrected / recall).
struct RepairScore {
  size_t changed = 0;
  size_t changed_correctly = 0;  // dirty cell set back to original
  size_t changed_dirty = 0;      // dirty cell touched (any new value)
  size_t dirty_total = 0;

  double precision() const {
    return changed == 0 ? 0.0
                        : static_cast<double>(changed_dirty) /
                              static_cast<double>(changed);
  }
  double correction_rate() const {
    return dirty_total == 0 ? 0.0
                            : static_cast<double>(changed_correctly) /
                                  static_cast<double>(dirty_total);
  }
};

/// Compares `repaired` to the pristine original. `dirty_cells` lists
/// the cells the error generator scrambled; `actions` the rewrites the
/// repair applied (RepairResult::actions).
Result<RepairScore> ScoreRepair(const Relation& pristine,
                                const Relation& repaired,
                                const std::vector<Cell>& dirty_cells,
                                const std::vector<RepairAction>& actions);

}  // namespace et

#endif  // ET_REPAIR_REPAIR_H_
