#include "repair/repair.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "fd/g1.h"
#include "fd/partition.h"

namespace et {
namespace {

/// Trusted FDs sorted by descending confidence (stable on ties).
std::vector<WeightedFD> TrustedFds(const std::vector<WeightedFD>& fds,
                                   double threshold) {
  std::vector<WeightedFD> trusted;
  for (const WeightedFD& wfd : fds) {
    if (wfd.confidence >= threshold) trusted.push_back(wfd);
  }
  std::stable_sort(trusted.begin(), trusted.end(),
                   [](const WeightedFD& a, const WeightedFD& b) {
                     if (a.confidence != b.confidence) {
                       return a.confidence > b.confidence;
                     }
                     return a.fd < b.fd;
                   });
  return trusted;
}

/// Actions one pass of one FD proposes over `rel`.
void ProposeForFd(const Relation& rel, const WeightedFD& wfd,
                  const RepairOptions& options,
                  std::vector<RepairAction>* out) {
  const Partition part = Partition::Build(rel, wfd.fd.lhs);
  for (const auto& cls : part.classes()) {
    // Census of RHS codes in this class.
    std::unordered_map<Dictionary::Code, size_t> freq;
    for (RowId r : cls) ++freq[rel.code(r, wfd.fd.rhs)];
    if (freq.size() < 2) continue;  // consistent class
    // Plurality value; deterministic tie-break by smaller code.
    Dictionary::Code majority = 0;
    size_t best = 0;
    for (const auto& [code, cnt] : freq) {
      if (cnt > best || (cnt == best && code < majority)) {
        majority = code;
        best = cnt;
      }
    }
    const double share =
        static_cast<double>(best) / static_cast<double>(cls.size());
    if (share < options.min_majority) continue;
    const std::string& new_value =
        rel.dictionary(wfd.fd.rhs).Lookup(majority);
    for (RowId r : cls) {
      if (rel.code(r, wfd.fd.rhs) == majority) continue;
      RepairAction action;
      action.cell = Cell{r, wfd.fd.rhs};
      action.old_value = rel.cell(r, wfd.fd.rhs);
      action.new_value = new_value;
      action.cause = wfd.fd;
      action.confidence = wfd.confidence;
      out->push_back(action);
    }
  }
}

uint64_t TotalViolations(const Relation& rel,
                         const std::vector<WeightedFD>& fds) {
  uint64_t total = 0;
  for (const WeightedFD& wfd : fds) {
    total += ViolatingPairCount(rel, wfd.fd);
  }
  return total;
}

}  // namespace

std::vector<RepairAction> SuggestRepairs(const Relation& rel,
                                         const std::vector<WeightedFD>& fds,
                                         const RepairOptions& options) {
  std::vector<RepairAction> out;
  for (const WeightedFD& wfd :
       TrustedFds(fds, options.trust_threshold)) {
    ProposeForFd(rel, wfd, options, &out);
  }
  return out;
}

Result<RepairResult> RepairRelation(Relation* rel,
                                    const std::vector<WeightedFD>& fds,
                                    const RepairOptions& options) {
  if (rel == nullptr) {
    return Status::InvalidArgument("relation must not be null");
  }
  if (options.min_majority < 0.0 || options.min_majority > 1.0) {
    return Status::InvalidArgument("min_majority must be in [0,1]");
  }
  const std::vector<WeightedFD> trusted =
      TrustedFds(fds, options.trust_threshold);
  for (const WeightedFD& wfd : trusted) {
    if (!wfd.fd.IsValid(rel->schema())) {
      return Status::InvalidArgument("FD invalid for this schema");
    }
  }
  RepairResult result;
  result.violations_before = TotalViolations(*rel, trusted);
  for (size_t pass = 0; pass < options.max_passes; ++pass) {
    std::vector<RepairAction> proposed;
    for (const WeightedFD& wfd : trusted) {
      // Propose and apply per FD so later FDs see earlier fixes.
      std::vector<RepairAction> actions;
      ProposeForFd(*rel, wfd, options, &actions);
      for (const RepairAction& action : actions) {
        ET_RETURN_NOT_OK(rel->SetCell(action.cell.row, action.cell.col,
                                      action.new_value));
      }
      proposed.insert(proposed.end(), actions.begin(), actions.end());
    }
    result.actions.insert(result.actions.end(), proposed.begin(),
                          proposed.end());
    if (proposed.empty()) break;
  }
  result.violations_after = TotalViolations(*rel, trusted);
  return result;
}

Result<RepairScore> ScoreRepair(const Relation& pristine,
                                const Relation& repaired,
                                const std::vector<Cell>& dirty_cells,
                                const std::vector<RepairAction>& actions) {
  if (pristine.num_rows() != repaired.num_rows() ||
      pristine.schema() != repaired.schema()) {
    return Status::InvalidArgument(
        "pristine/repaired relations do not line up");
  }
  // Schemas are capped at 32 attributes, so 6 bits suffice for the
  // column part of a packed cell key.
  auto pack = [](RowId row, int col) {
    return (static_cast<uint64_t>(row) << 6) |
           static_cast<uint32_t>(col);
  };
  std::unordered_set<uint64_t> dirty;
  for (const Cell& c : dirty_cells) dirty.insert(pack(c.row, c.col));
  std::unordered_set<uint64_t> changed;
  for (const RepairAction& action : actions) {
    changed.insert(pack(action.cell.row, action.cell.col));
  }

  RepairScore score;
  score.dirty_total = dirty.size();
  score.changed = changed.size();
  for (uint64_t key : changed) {
    if (dirty.count(key)) ++score.changed_dirty;
  }
  for (uint64_t key : dirty) {
    const RowId row = static_cast<RowId>(key >> 6);
    const int col = static_cast<int>(key & 0x3F);
    if (repaired.cell(row, col) == pristine.cell(row, col)) {
      ++score.changed_correctly;
    }
  }
  return score;
}

}  // namespace et
