// Per-FD F1 against ground-truth clean tuples (App. A.2):
//   c(f)   — tuples compliant with f (in no violating pair of f)
//   c_g    — tuples that are clean in the ground truth
//   precision = |c(f) ∩ c_g| / |c(f)|
//   recall    = |c(f) ∩ c_g| / |c_g|
// (the paper's displayed recall formula omits the intersection, an
// evident typo; the harmonic mean only makes sense with it).
//
// These scores drive Table 3 (f1-change of the user's hypothesis
// between rounds) and the "+"-metric discounts of Figure 2.

#ifndef ET_METRICS_FD_F1_H_
#define ET_METRICS_FD_F1_H_

#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "fd/fd.h"
#include "metrics/classification.h"

namespace et {

/// Tuples of `rel` compliant with `fd`: not a member of any violating
/// pair. Returned as a per-row flag vector.
std::vector<bool> CompliantRows(const Relation& rel, const FD& fd);

/// F1 of `fd`'s compliant set against ground-truth clean rows.
/// `clean_rows` is a per-row flag vector (true = clean) of size
/// rel.num_rows().
Result<PRF1> FdCleanF1(const Relation& rel, const FD& fd,
                       const std::vector<bool>& clean_rows);

}  // namespace et

#endif  // ET_METRICS_FD_F1_H_
