#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

#include "common/math.h"

namespace et {
namespace {

Status CheckOptions(const BootstrapOptions& options) {
  if (options.resamples < 10) {
    return Status::InvalidArgument("need at least 10 resamples");
  }
  if (options.confidence <= 0.0 || options.confidence >= 1.0) {
    return Status::InvalidArgument("confidence must be in (0,1)");
  }
  return Status::OK();
}

/// Percentile of a sorted vector (nearest-rank).
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Result<ConfidenceInterval> BootstrapMeanCI(
    const std::vector<double>& samples, const BootstrapOptions& options) {
  ET_RETURN_NOT_OK(CheckOptions(options));
  if (samples.size() < 2) {
    return Status::InvalidArgument("need at least 2 samples");
  }
  Rng rng(options.seed);
  std::vector<double> means;
  means.reserve(options.resamples);
  for (size_t b = 0; b < options.resamples; ++b) {
    KahanSum sum;
    for (size_t i = 0; i < samples.size(); ++i) {
      sum.Add(samples[rng.NextUint64(samples.size())]);
    }
    means.push_back(sum.sum() / static_cast<double>(samples.size()));
  }
  std::sort(means.begin(), means.end());
  const double alpha = 1.0 - options.confidence;
  ConfidenceInterval ci;
  ci.mean = Mean(samples);
  ci.lower = Percentile(means, alpha / 2.0);
  ci.upper = Percentile(means, 1.0 - alpha / 2.0);
  return ci;
}

Result<PairedComparison> PairedBootstrap(
    const std::vector<double>& a, const std::vector<double>& b,
    const BootstrapOptions& options) {
  ET_RETURN_NOT_OK(CheckOptions(options));
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired samples must align");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("need at least 2 pairs");
  }
  std::vector<double> diffs(a.size());
  for (size_t i = 0; i < a.size(); ++i) diffs[i] = a[i] - b[i];

  Rng rng(options.seed);
  std::vector<double> means;
  means.reserve(options.resamples);
  size_t a_below = 0;
  for (size_t r = 0; r < options.resamples; ++r) {
    KahanSum sum;
    for (size_t i = 0; i < diffs.size(); ++i) {
      sum.Add(diffs[rng.NextUint64(diffs.size())]);
    }
    const double mean_diff =
        sum.sum() / static_cast<double>(diffs.size());
    means.push_back(mean_diff);
    if (mean_diff < 0.0) ++a_below;
  }
  std::sort(means.begin(), means.end());
  const double alpha = 1.0 - options.confidence;
  PairedComparison out;
  out.mean_difference = Mean(diffs);
  out.difference_ci.mean = out.mean_difference;
  out.difference_ci.lower = Percentile(means, alpha / 2.0);
  out.difference_ci.upper = Percentile(means, 1.0 - alpha / 2.0);
  out.prob_a_below_b = static_cast<double>(a_below) /
                       static_cast<double>(options.resamples);
  return out;
}

}  // namespace et
