#include "metrics/classification.h"

namespace et {

Result<ConfusionCounts> Confusion(const std::vector<bool>& predicted,
                                  const std::vector<bool>& actual) {
  if (predicted.size() != actual.size()) {
    return Status::InvalidArgument(
        "predicted/actual size mismatch: " +
        std::to_string(predicted.size()) + " vs " +
        std::to_string(actual.size()));
  }
  ConfusionCounts c;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] && actual[i]) {
      ++c.tp;
    } else if (predicted[i] && !actual[i]) {
      ++c.fp;
    } else if (!predicted[i] && actual[i]) {
      ++c.fn;
    } else {
      ++c.tn;
    }
  }
  return c;
}

PRF1 ScoresFromCounts(const ConfusionCounts& counts) {
  PRF1 out;
  const double tp = static_cast<double>(counts.tp);
  if (counts.tp + counts.fp > 0) {
    out.precision = tp / static_cast<double>(counts.tp + counts.fp);
  }
  if (counts.tp + counts.fn > 0) {
    out.recall = tp / static_cast<double>(counts.tp + counts.fn);
  }
  if (out.precision + out.recall > 0.0) {
    out.f1 = 2.0 * out.precision * out.recall /
             (out.precision + out.recall);
  }
  return out;
}

Result<PRF1> DetectionScores(const std::vector<bool>& predicted,
                             const std::vector<bool>& actual) {
  ET_ASSIGN_OR_RETURN(ConfusionCounts c, Confusion(predicted, actual));
  return ScoresFromCounts(c);
}

}  // namespace et
