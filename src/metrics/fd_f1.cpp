#include "metrics/fd_f1.h"

#include "fd/partition.h"

namespace et {

std::vector<bool> CompliantRows(const Relation& rel, const FD& fd) {
  std::vector<bool> compliant(rel.num_rows(), true);
  const Partition part = Partition::Build(rel, fd.lhs);
  for (const auto& cls : part.classes()) {
    // A mixed-RHS class puts every member in some violating pair.
    const Dictionary::Code first = rel.code(cls[0], fd.rhs);
    bool uniform = true;
    for (RowId r : cls) {
      if (rel.code(r, fd.rhs) != first) {
        uniform = false;
        break;
      }
    }
    if (!uniform) {
      for (RowId r : cls) compliant[r] = false;
    }
  }
  return compliant;
}

Result<PRF1> FdCleanF1(const Relation& rel, const FD& fd,
                       const std::vector<bool>& clean_rows) {
  if (clean_rows.size() != rel.num_rows()) {
    return Status::InvalidArgument("clean_rows size mismatch");
  }
  const std::vector<bool> compliant = CompliantRows(rel, fd);
  // Here the "positive" prediction is compliant-and-clean.
  ConfusionCounts c;
  for (size_t i = 0; i < compliant.size(); ++i) {
    if (compliant[i] && clean_rows[i]) {
      ++c.tp;
    } else if (compliant[i] && !clean_rows[i]) {
      ++c.fp;
    } else if (!compliant[i] && clean_rows[i]) {
      ++c.fn;
    } else {
      ++c.tn;
    }
  }
  return ScoresFromCounts(c);
}

}  // namespace et
