// Resampling statistics for experiment reporting: bootstrap confidence
// intervals over per-repetition results, and a paired bootstrap test
// for "method A beats method B" claims. Seeded and deterministic like
// everything else in the library.

#ifndef ET_METRICS_STATS_H_
#define ET_METRICS_STATS_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace et {

struct BootstrapOptions {
  size_t resamples = 2000;
  /// Two-sided confidence level (e.g. 0.95).
  double confidence = 0.95;
  uint64_t seed = 0xB007;
};

/// A two-sided percentile interval around the sample mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;

  double half_width() const { return (upper - lower) / 2.0; }
};

/// Percentile-bootstrap CI of the mean of `samples` (>= 2 samples;
/// confidence in (0,1)).
Result<ConfidenceInterval> BootstrapMeanCI(
    const std::vector<double>& samples,
    const BootstrapOptions& options = {});

/// Paired bootstrap comparison of two equal-length per-repetition
/// vectors (e.g. final MAE of two policies on the same seeds).
struct PairedComparison {
  /// Mean of a - b.
  double mean_difference = 0.0;
  ConfidenceInterval difference_ci;
  /// Fraction of resamples where mean(a) < mean(b) — the bootstrap
  /// probability that A scores lower than B (for MAE, that A wins).
  double prob_a_below_b = 0.0;
};

Result<PairedComparison> PairedBootstrap(
    const std::vector<double>& a, const std::vector<double>& b,
    const BootstrapOptions& options = {});

}  // namespace et

#endif  // ET_METRICS_STATS_H_
