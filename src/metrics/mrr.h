// Reciprocal Rank / Mean Reciprocal Rank over top-k predictions
// (App. A.2's evaluation metric, k = 5), plus the "+"-variants that also
// credit subset/superset FDs of the ground truth, discounted by the F1
// difference between the matched FD and the ground-truth FD.

#ifndef ET_METRICS_MRR_H_
#define ET_METRICS_MRR_H_

#include <cstddef>
#include <vector>

#include "fd/hypothesis_space.h"

namespace et {

/// 1/p where p is the 1-based position of `target` in `ranked`
/// (typically a top-k list); 0 when absent.
double ReciprocalRank(const std::vector<size_t>& ranked, size_t target);

/// "+"-variant: the first position whose FD is the target *or* a
/// subset/superset of it scores. Exact matches earn 1/p; related
/// matches earn (1/p) * (1 - |f1[match] - f1[target]|), where `f1`
/// holds each hypothesis-space FD's F1 against ground truth.
double ReciprocalRankPlus(const HypothesisSpace& space,
                          const std::vector<size_t>& ranked, size_t target,
                          const std::vector<double>& f1);

/// Mean of per-query reciprocal ranks; 0 for no queries.
double MeanReciprocalRank(const std::vector<double>& reciprocal_ranks);

}  // namespace et

#endif  // ET_METRICS_MRR_H_
