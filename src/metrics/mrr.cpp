#include "metrics/mrr.h"

#include <cmath>

#include "common/math.h"

namespace et {

double ReciprocalRank(const std::vector<size_t>& ranked, size_t target) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i] == target) return 1.0 / static_cast<double>(i + 1);
  }
  return 0.0;
}

double ReciprocalRankPlus(const HypothesisSpace& space,
                          const std::vector<size_t>& ranked, size_t target,
                          const std::vector<double>& f1) {
  const FD& target_fd = space.fd(target);
  for (size_t i = 0; i < ranked.size(); ++i) {
    const size_t idx = ranked[i];
    if (idx == target) return 1.0 / static_cast<double>(i + 1);
    if (space.fd(idx).IsRelatedTo(target_fd)) {
      const double discount =
          1.0 - std::fabs(f1.at(idx) - f1.at(target));
      return discount / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

double MeanReciprocalRank(const std::vector<double>& reciprocal_ranks) {
  return Mean(reciprocal_ranks);
}

}  // namespace et
