// Binary-classification scores for error detection (precision / recall /
// F1 over the dirty class) — Figure 7's metric.

#ifndef ET_METRICS_CLASSIFICATION_H_
#define ET_METRICS_CLASSIFICATION_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace et {

struct ConfusionCounts {
  size_t tp = 0;
  size_t fp = 0;
  size_t tn = 0;
  size_t fn = 0;

  size_t total() const { return tp + fp + tn + fn; }
};

struct PRF1 {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Tallies predictions against ground truth (parallel vectors; the
/// positive class is `true`).
Result<ConfusionCounts> Confusion(const std::vector<bool>& predicted,
                                  const std::vector<bool>& actual);

/// Precision/recall/F1 from counts. Degenerate denominators yield 0
/// (e.g. no predicted positives -> precision 0), matching the usual
/// error-detection convention.
PRF1 ScoresFromCounts(const ConfusionCounts& counts);

/// One-shot: confusion + scores.
Result<PRF1> DetectionScores(const std::vector<bool>& predicted,
                             const std::vector<bool>& actual);

}  // namespace et

#endif  // ET_METRICS_CLASSIFICATION_H_
