// BART-style error generation (Arocena et al., cited in App. A.2):
// scrambles cell values w.r.t. chosen FDs so the resulting relation
// contains a controlled amount of FD violations, while recording the
// ground truth of which rows/cells were dirtied.
//
// Two controls from the paper are implemented:
//   * the user-study *violation ratio* m/n — n violations in every
//     alternative FD per m violations in the target FD(s) (App. A.2,
//     ratios 1/3 and 2/3);
//   * the empirical study's *degree of violation* — inject until the
//     fraction of LHS-agreeing tuple pairs of the watched FDs that
//     violate reaches a target degree (App. C.1, 5%..35%).

#ifndef ET_ERRGEN_ERROR_GENERATOR_H_
#define ET_ERRGEN_ERROR_GENERATOR_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "data/relation.h"
#include "fd/fd.h"
#include "fd/violations.h"

namespace et {

/// Ground truth produced alongside injected errors.
struct DirtyGroundTruth {
  /// Per-row flag: true when any cell of the row was scrambled.
  std::vector<bool> dirty_rows;
  /// Exact cells that were overwritten, in injection order.
  std::vector<Cell> dirty_cells;

  size_t NumDirtyRows() const {
    size_t n = 0;
    for (bool b : dirty_rows) n += b;
    return n;
  }
};

/// Mutates a relation in place, injecting FD violations.
class ErrorGenerator {
 public:
  /// `rel` must outlive the generator. Initializes an all-clean ground
  /// truth sized to the relation.
  ErrorGenerator(Relation* rel, uint64_t seed);

  /// Injects one fresh violation of `fd`: picks an LHS equivalence
  /// class containing a satisfied pair and overwrites the RHS cell of
  /// one of its rows with a unique new value. Returns true on success,
  /// false when the relation has no class left to scramble.
  ///
  /// `avoid` lists FDs that must NOT acquire new violations from this
  /// scramble (the user-study setup needs alternative-only violations
  /// that leave the target FDs untouched). Rows whose change would
  /// violate an avoid-FD are excluded from the candidate set; when no
  /// candidate survives, the call returns false.
  Result<bool> InjectViolation(const FD& fd,
                               const std::vector<FD>& avoid = {});

  /// Injects `count` violations of `fd`. Stops early (OK) when the
  /// relation runs out of scrambleable classes; the returned value is
  /// the number actually injected.
  Result<size_t> InjectViolations(const FD& fd, size_t count,
                                  const std::vector<FD>& avoid = {});

  /// User-study scenario shape: per `ratio_m` violations in each target
  /// FD, `ratio_n` violations in each alternative FD, scaled so targets
  /// receive `target_violations` total.
  Status InjectWithRatio(const std::vector<FD>& targets,
                         const std::vector<FD>& alternatives,
                         size_t target_violations, int ratio_m,
                         int ratio_n);

  /// Empirical-study shape: round-robins injections across `fds` until
  /// MeasureDegree(fds) >= degree or no further injection is possible.
  /// degree in [0, 1).
  Status InjectToDegree(const std::vector<FD>& fds, double degree);

  /// Current violation degree of the watched FDs: violating pairs
  /// divided by LHS-agreeing pairs, summed over `fds`. 0 when no pair
  /// agrees on any LHS.
  double MeasureDegree(const std::vector<FD>& fds) const;

  const DirtyGroundTruth& ground_truth() const { return truth_; }

 private:
  Relation* rel_;
  Rng rng_;
  DirtyGroundTruth truth_;
  size_t fresh_counter_ = 0;
};

}  // namespace et

#endif  // ET_ERRGEN_ERROR_GENERATOR_H_
