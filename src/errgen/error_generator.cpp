#include "errgen/error_generator.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "fd/g1.h"
#include "fd/partition.h"

namespace et {

ErrorGenerator::ErrorGenerator(Relation* rel, uint64_t seed)
    : rel_(rel), rng_(seed) {
  truth_.dirty_rows.assign(rel->num_rows(), false);
}

Result<bool> ErrorGenerator::InjectViolation(const FD& fd,
                                             const std::vector<FD>& avoid) {
  if (!fd.IsValid(rel_->schema())) {
    return Status::InvalidArgument("invalid FD for this schema");
  }
  // Overwriting row r's column fd.rhs with a globally fresh value can
  // only create new violations in FDs whose RHS is that same column
  // (for LHS membership the fresh value forms a singleton class). A row
  // is safe for an avoid-FD f when it has no partner agreeing with it
  // on f's LHS.
  std::vector<FD> relevant_avoid;
  for (const FD& f : avoid) {
    if (!f.IsValid(rel_->schema())) {
      return Status::InvalidArgument("invalid avoid-FD for this schema");
    }
    if (f.rhs == fd.rhs) relevant_avoid.push_back(f);
  }
  std::vector<std::vector<bool>> has_partner;
  for (const FD& f : relevant_avoid) {
    std::vector<bool> flags(rel_->num_rows(), false);
    const Partition p = Partition::Build(*rel_, f.lhs);
    for (const auto& cls : p.classes()) {
      for (RowId r : cls) flags[r] = true;
    }
    has_partner.push_back(std::move(flags));
  }
  auto safe = [&](RowId r) {
    for (const auto& flags : has_partner) {
      if (flags[r]) return false;
    }
    return true;
  };
  const Partition part = Partition::Build(*rel_, fd.lhs);
  // Candidate classes: those containing at least one satisfied pair,
  // i.e. some RHS value shared by >= 2 rows. Overwriting one such row's
  // RHS creates at least one new violating pair.
  struct Candidate {
    RowId row;
  };
  std::vector<Candidate> candidates;
  for (const auto& cls : part.classes()) {
    // Census of RHS values within the class.
    std::unordered_map<Dictionary::Code, std::vector<RowId>> by_rhs;
    for (RowId r : cls) by_rhs[rel_->code(r, fd.rhs)].push_back(r);
    for (const auto& [code, members] : by_rhs) {
      (void)code;
      if (members.size() >= 2) {
        // Prefer rows not already dirtied so the degree keeps moving
        // and ground truth stays interpretable.
        for (RowId r : members) {
          if (!truth_.dirty_rows[r] && safe(r)) candidates.push_back({r});
        }
        if (candidates.empty()) {
          for (RowId r : members) {
            if (safe(r)) candidates.push_back({r});
          }
        }
      }
    }
  }
  if (candidates.empty()) return false;
  const Candidate pick =
      candidates[rng_.NextUint64(candidates.size())];
  const std::string fresh =
      "ERR_" + std::to_string(fresh_counter_++);
  ET_RETURN_NOT_OK(rel_->SetCell(pick.row, fd.rhs, fresh));
  truth_.dirty_rows[pick.row] = true;
  truth_.dirty_cells.push_back(Cell{pick.row, fd.rhs});
  return true;
}

Result<size_t> ErrorGenerator::InjectViolations(
    const FD& fd, size_t count, const std::vector<FD>& avoid) {
  size_t injected = 0;
  for (size_t i = 0; i < count; ++i) {
    ET_ASSIGN_OR_RETURN(bool ok, InjectViolation(fd, avoid));
    if (!ok) break;
    ++injected;
  }
  return injected;
}

Status ErrorGenerator::InjectWithRatio(const std::vector<FD>& targets,
                                       const std::vector<FD>& alternatives,
                                       size_t target_violations,
                                       int ratio_m, int ratio_n) {
  if (ratio_m <= 0 || ratio_n <= 0) {
    return Status::InvalidArgument("ratio parts must be positive");
  }
  if (targets.empty()) {
    return Status::InvalidArgument("need at least one target FD");
  }
  // n alternative violations per m target violations.
  const size_t alt_violations = static_cast<size_t>(
      static_cast<double>(target_violations) *
          static_cast<double>(ratio_n) / static_cast<double>(ratio_m) +
      0.5);
  for (const FD& fd : targets) {
    // Target scrambles may legitimately also violate alternatives (the
    // study's scrambler is target-directed).
    ET_RETURN_NOT_OK(InjectViolations(fd, target_violations).status());
  }
  for (const FD& fd : alternatives) {
    // Alternative violations must NOT leak into the targets, otherwise
    // the ratio inverts; skip gracefully when the data structure
    // leaves no safe rows (the generator then relies on the other
    // alternative FDs).
    ET_RETURN_NOT_OK(
        InjectViolations(fd, alt_violations, targets).status());
  }
  return Status::OK();
}

Status ErrorGenerator::InjectToDegree(const std::vector<FD>& fds,
                                      double degree) {
  if (degree < 0.0 || degree >= 1.0) {
    return Status::InvalidArgument("degree must be in [0,1)");
  }
  if (fds.empty()) {
    return Status::InvalidArgument("need at least one FD");
  }
  size_t next = 0;
  // Hard cap: each row can be dirtied only so many times before the
  // relation runs out of satisfied pairs anyway.
  const size_t max_steps = rel_->num_rows() * fds.size() + 16;
  for (size_t step = 0; step < max_steps; ++step) {
    if (MeasureDegree(fds) >= degree) return Status::OK();
    bool any = false;
    // Try each FD once starting from the round-robin cursor.
    for (size_t k = 0; k < fds.size(); ++k) {
      const FD& fd = fds[(next + k) % fds.size()];
      ET_ASSIGN_OR_RETURN(bool ok, InjectViolation(fd));
      if (ok) {
        next = (next + k + 1) % fds.size();
        any = true;
        break;
      }
    }
    if (!any) break;  // nothing left to scramble
  }
  if (MeasureDegree(fds) >= degree) return Status::OK();
  return Status::FailedPrecondition(
      "could not reach requested violation degree");
}

double ErrorGenerator::MeasureDegree(const std::vector<FD>& fds) const {
  uint64_t violating = 0;
  uint64_t agreeing = 0;
  for (const FD& fd : fds) {
    const Partition part = Partition::Build(*rel_, fd.lhs);
    agreeing += part.AgreeingPairCount();
    violating += ViolatingPairCount(*rel_, fd);
  }
  if (agreeing == 0) return 0.0;
  return static_cast<double>(violating) / static_cast<double>(agreeing);
}

}  // namespace et
