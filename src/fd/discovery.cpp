#include "fd/discovery.h"

#include <algorithm>
#include <unordered_map>

#include "fd/attrset.h"
#include "fd/g1.h"
#include "fd/partition.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace et {
namespace {

/// Levelwise partition cache: partitions for every explored LHS mask,
/// computed via TANE's partition product from the previous level.
class PartitionCache {
 public:
  PartitionCache(const Relation& rel, bool enabled)
      : rel_(rel), enabled_(enabled) {
    if (!enabled_) return;
    for (int a = 0; a < rel.schema().num_attributes(); ++a) {
      cache_.emplace(AttrSet::Single(a).mask(),
                     Partition::Build(rel, AttrSet::Single(a)));
    }
  }

  /// Partition for `attrs`, from the cache (computing and caching via
  /// the product when missing) or by direct build when disabled.
  const Partition& Get(AttrSet attrs) {
    auto it = cache_.find(attrs.mask());
    if (it != cache_.end()) return it->second;
    Partition part;
    if (enabled_ && attrs.size() >= 2) {
      const int low = attrs.ToIndices().front();
      const AttrSet rest = attrs.WithoutAttr(low);
      part = Partition::Product(Get(rest), Get(AttrSet::Single(low)),
                                rel_.num_rows());
    } else {
      part = Partition::Build(rel_, attrs);
    }
    return cache_.emplace(attrs.mask(), std::move(part)).first->second;
  }

  /// Drops cached partitions with more attributes than `level` would
  /// need again (memory control between levels).
  void EvictAbove(int max_size) {
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (std::popcount(it->first) > max_size) {
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  const Relation& rel_;
  bool enabled_;
  std::unordered_map<uint32_t, Partition> cache_;
};

}  // namespace

Result<std::vector<DiscoveredFD>> DiscoverFDs(
    const Relation& rel, const DiscoveryOptions& options) {
  ET_TRACE_SCOPE("fd.discovery.run");
  if (options.g1_threshold < 0.0 || options.g1_threshold >= 1.0) {
    return Status::InvalidArgument("g1_threshold must be in [0,1)");
  }
  if (options.max_lhs_size < 1) {
    return Status::InvalidArgument("max_lhs_size must be >= 1");
  }
  const Schema& schema = rel.schema();
  const int n = schema.num_attributes();
  const double n_rows = static_cast<double>(rel.num_rows());

  PartitionCache cache(rel, options.use_partition_cache);

  std::vector<DiscoveredFD> found;
  // Per RHS attribute, the set of LHS masks already known to determine
  // it (for minimality pruning: any superset of a holding LHS is
  // non-minimal).
  std::vector<std::vector<AttrSet>> holding(n);

  for (int level = 1; level <= options.max_lhs_size; ++level) {
    const AttrSet universe = AttrSet::FullSet(n);
    for (const AttrSet& lhs : EnumerateSubsets(universe, level, level)) {
      for (int rhs = 0; rhs < n; ++rhs) {
        if (lhs.Contains(rhs)) continue;
        if (options.minimal_only) {
          bool dominated = false;
          for (const AttrSet& h : holding[rhs]) {
            if (h.IsProperSubsetOf(lhs)) {
              dominated = true;
              break;
            }
          }
          if (dominated) continue;
        }
        const FD fd(lhs, rhs);
        ET_COUNTER_INC("fd.discovery.candidates");
        double g1;
        if (options.use_partition_cache) {
          // Violating pairs = pairs agreeing on LHS but not on
          // LHS ∪ {RHS}; both counts come from cached partitions.
          const uint64_t lhs_pairs =
              cache.Get(lhs).AgreeingPairCount();
          const uint64_t full_pairs =
              cache.Get(lhs.With(rhs)).AgreeingPairCount();
          g1 = rel.num_rows() < 2
                   ? 0.0
                   : static_cast<double>(lhs_pairs - full_pairs) /
                         (n_rows * n_rows);
        } else {
          g1 = G1(rel, fd);
        }
        if (g1 <= options.g1_threshold) {
          ET_COUNTER_INC("fd.discovery.found");
          found.push_back({fd, g1});
          holding[rhs].push_back(lhs);
        }
      }
    }
    // Partitions wider than the next level's LHS ∪ RHS are dead.
    cache.EvictAbove(level + 1);
  }
  std::sort(found.begin(), found.end(),
            [](const DiscoveredFD& a, const DiscoveredFD& b) {
              return a.fd < b.fd;
            });
  return found;
}

}  // namespace et
