#include "fd/discovery.h"

#include <algorithm>

#include "fd/attrset.h"
#include "fd/eval_cache.h"
#include "fd/g1.h"
#include "fd/partition.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace et {

Result<std::vector<DiscoveredFD>> DiscoverFDs(
    const Relation& rel, const DiscoveryOptions& options) {
  ET_TRACE_SCOPE("fd.discovery.run");
  if (options.g1_threshold < 0.0 || options.g1_threshold >= 1.0) {
    return Status::InvalidArgument("g1_threshold must be in [0,1)");
  }
  if (options.max_lhs_size < 1) {
    return Status::InvalidArgument("max_lhs_size must be >= 1");
  }
  const Schema& schema = rel.schema();
  const int n = schema.num_attributes();
  const double n_rows = static_cast<double>(rel.num_rows());

  // Shared evaluation cache (replaces the levelwise cache this file
  // used to own): multi-attribute partitions derive from cached
  // sub-partitions via TANE's product, and the LRU byte budget takes
  // over the old explicit between-level eviction.
  EvalCache cache(rel);

  std::vector<DiscoveredFD> found;
  // Per RHS attribute, the set of LHS masks already known to determine
  // it (for minimality pruning: any superset of a holding LHS is
  // non-minimal).
  std::vector<std::vector<AttrSet>> holding(n);

  for (int level = 1; level <= options.max_lhs_size; ++level) {
    const AttrSet universe = AttrSet::FullSet(n);
    for (const AttrSet& lhs : EnumerateSubsets(universe, level, level)) {
      for (int rhs = 0; rhs < n; ++rhs) {
        if (lhs.Contains(rhs)) continue;
        if (options.minimal_only) {
          bool dominated = false;
          for (const AttrSet& h : holding[rhs]) {
            if (h.IsProperSubsetOf(lhs)) {
              dominated = true;
              break;
            }
          }
          if (dominated) continue;
        }
        const FD fd(lhs, rhs);
        ET_COUNTER_INC("fd.discovery.candidates");
        const double g1 = options.use_partition_cache
                              ? (rel.num_rows() < 2
                                     ? 0.0
                                     : static_cast<double>(
                                           cache.ViolatingPairCount(fd)) /
                                           (n_rows * n_rows))
                              : G1(rel, fd);
        if (g1 <= options.g1_threshold) {
          ET_COUNTER_INC("fd.discovery.found");
          found.push_back({fd, g1});
          holding[rhs].push_back(lhs);
        }
      }
    }
  }
  std::sort(found.begin(), found.end(),
            [](const DiscoveredFD& a, const DiscoveredFD& b) {
              return a.fd < b.fd;
            });
  return found;
}

}  // namespace et
