#include "fd/pair_compliance.h"

#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "fd/eval_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace et {
namespace {

// class_of[row] = index of the row's stripped-partition class, or -1
// for stripped singletons. Two rows agree on the attribute set iff both
// ids are equal and >= 0.
std::vector<int32_t> ClassOfRow(const Relation& rel, AttrSet attrs,
                                EvalCache* cache) {
  std::shared_ptr<const Partition> owned;
  const Partition* part;
  if (cache != nullptr) {
    owned = cache->Get(attrs);
    part = owned.get();
  } else {
    owned = std::make_shared<const Partition>(Partition::Build(rel, attrs));
    part = owned.get();
  }
  std::vector<int32_t> class_of(rel.num_rows(), -1);
  const auto& classes = part->classes();
  for (size_t c = 0; c < classes.size(); ++c) {
    for (RowId row : classes[c]) class_of[row] = static_cast<int32_t>(c);
  }
  return class_of;
}

}  // namespace

PairComplianceMatrix PairComplianceMatrix::Build(
    const Relation& rel, std::shared_ptr<const HypothesisSpace> space,
    const std::vector<RowPair>& pool, EvalCache* cache) {
  ET_CHECK(space != nullptr);
  ET_TRACE_SCOPE("fd.pair_compliance.build");

  PairComplianceMatrix m;
  m.space_ = std::move(space);
  m.pairs_ = pool;
  m.num_fds_ = m.space_->size();
  m.words_per_pair_ = (m.num_fds_ + 63) / 64;
  // Flat open-addressed index at <= 50% load; every pool pair packs to
  // a nonzero key (distinct rows), so 0 marks empty slots.
  size_t cap = 1;
  while (cap < 2 * m.pairs_.size()) cap <<= 1;
  m.index_keys_.assign(cap, 0);
  m.index_rows_.assign(cap, 0);
  const size_t mask = cap - 1;
  for (size_t i = 0; i < m.pairs_.size(); ++i) {
    const uint64_t key = PackPair(m.pairs_[i]);
    size_t slot = MixKey(key) & mask;
    while (m.index_keys_[slot] != 0) slot = (slot + 1) & mask;
    m.index_keys_[slot] = key;
    m.index_rows_[slot] = static_cast<uint32_t>(i);
  }
  m.applicable_.assign(m.pairs_.size() * m.words_per_pair_, 0);
  m.violates_.assign(m.pairs_.size() * m.words_per_pair_, 0);
  m.applicable_counts_.assign(m.pairs_.size(), 0);

  // FDs heavily share LHS masks (and an LHS ∪ {RHS} of one FD is the
  // LHS of others), so memoize class-id arrays by attribute mask.
  std::unordered_map<uint32_t, std::vector<int32_t>> class_arrays;
  auto classes_for = [&](AttrSet attrs) -> const std::vector<int32_t>& {
    auto it = class_arrays.find(attrs.mask());
    if (it == class_arrays.end()) {
      it = class_arrays.emplace(attrs.mask(), ClassOfRow(rel, attrs, cache))
               .first;
    }
    return it->second;
  };

  for (size_t f = 0; f < m.num_fds_; ++f) {
    const FD& fd = m.space_->fd(f);
    const std::vector<int32_t>& lhs_class = classes_for(fd.lhs);
    const std::vector<int32_t>& all_class = classes_for(fd.lhs.With(fd.rhs));
    const uint64_t bit = uint64_t{1} << (f & 63);
    const size_t word = f >> 6;
    for (size_t i = 0; i < m.pairs_.size(); ++i) {
      const RowPair& p = m.pairs_[i];
      const int32_t ca = lhs_class[p.first];
      if (ca < 0 || ca != lhs_class[p.second]) continue;  // inapplicable
      m.applicable_[i * m.words_per_pair_ + word] |= bit;
      ++m.applicable_counts_[i];
      const int32_t sa = all_class[p.first];
      if (sa < 0 || sa != all_class[p.second]) {
        m.violates_[i * m.words_per_pair_ + word] |= bit;
      }
    }
  }

  ET_COUNTER_ADD("fd.pair_compliance.cells",
                 static_cast<uint64_t>(m.pairs_.size()) * m.num_fds_);
  return m;
}

size_t PairComplianceMatrix::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  bytes += pairs_.capacity() * sizeof(RowPair);
  bytes += (applicable_.capacity() + violates_.capacity()) * sizeof(uint64_t);
  bytes += applicable_counts_.capacity() * sizeof(uint32_t);
  bytes += index_keys_.capacity() * sizeof(uint64_t);
  bytes += index_rows_.capacity() * sizeof(uint32_t);
  return bytes;
}

}  // namespace et
