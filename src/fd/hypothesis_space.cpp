#include "fd/hypothesis_space.h"

#include <algorithm>

#include "common/thread_pool.h"
#include "fd/eval_cache.h"
#include "fd/g1.h"

namespace et {

Result<HypothesisSpace> HypothesisSpace::Make(const Schema& schema,
                                              std::vector<FD> fds) {
  HypothesisSpace space;
  space.schema_ = schema;
  for (const FD& fd : fds) {
    if (!fd.IsValid(schema)) {
      return Status::InvalidArgument("invalid FD in hypothesis space");
    }
    auto [it, inserted] = space.index_.emplace(fd, space.fds_.size());
    (void)it;
    if (!inserted) {
      return Status::AlreadyExists("duplicate FD: " + fd.ToString(schema));
    }
    space.fds_.push_back(fd);
  }
  if (space.fds_.empty()) {
    return Status::InvalidArgument("hypothesis space must be non-empty");
  }
  return space;
}

HypothesisSpace HypothesisSpace::EnumerateAll(const Schema& schema,
                                              int max_total_attrs) {
  std::vector<FD> fds;
  const int n = schema.num_attributes();
  const AttrSet universe = AttrSet::FullSet(n);
  for (int rhs = 0; rhs < n; ++rhs) {
    const AttrSet candidates = universe.WithoutAttr(rhs);
    for (const AttrSet& lhs :
         EnumerateSubsets(candidates, 1, max_total_attrs - 1)) {
      fds.emplace_back(lhs, rhs);
    }
  }
  std::sort(fds.begin(), fds.end());
  auto space = Make(schema, std::move(fds));
  // Enumeration cannot produce duplicates or invalid FDs.
  return std::move(space).value();
}

Result<HypothesisSpace> HypothesisSpace::BuildCapped(
    const Relation& rel, int max_total_attrs, size_t cap,
    const std::vector<FD>& must_include) {
  if (cap == 0) return Status::InvalidArgument("cap must be positive");
  const HypothesisSpace all =
      EnumerateAll(rel.schema(), max_total_attrs);
  for (const FD& fd : must_include) {
    if (!all.Contains(fd)) {
      return Status::InvalidArgument(
          "must_include FD outside the enumerable space: " +
          fd.ToString(rel.schema()));
    }
  }
  if (must_include.size() > cap) {
    return Status::InvalidArgument("more must_include FDs than cap");
  }
  struct Ranked {
    FD fd;
    double g1;
  };
  // Degenerate candidates are excluded up front: an FD whose RHS
  // column is constant holds vacuously, and a constant LHS attribute
  // adds nothing to the determinant — both classes would flood the
  // low-g1 head of the ranking with rules that carry no signal
  // (Hospital's empty Address2/Address3 columns are the canonical
  // offenders).
  auto is_constant = [&](int col) {
    return rel.DistinctCount(col) < 2;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(all.size());
  for (const FD& fd : all.fds()) {
    if (std::find(must_include.begin(), must_include.end(), fd) !=
        must_include.end()) {
      continue;
    }
    if (is_constant(fd.rhs)) continue;
    bool degenerate_lhs = false;
    for (int col : fd.lhs.ToIndices()) {
      if (is_constant(col)) {
        degenerate_lhs = true;
        break;
      }
    }
    if (degenerate_lhs) continue;
    ranked.push_back({fd, 0.0});
  }
  // Score the full candidate space: partitions shared across FDs with
  // a common LHS via the cache, FDs scored in parallel (per-index
  // writes, so the ranking is identical at any thread count).
  EvalCache cache(rel);
  ParallelFor(ranked.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ranked[i].g1 = cache.G1(ranked[i].fd);
    }
  });
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     if (a.g1 != b.g1) return a.g1 < b.g1;
                     return a.fd < b.fd;
                   });
  // Keep a *spread* of plausibility, not just the lowest-g1 candidates:
  // half the remaining slots take the most plausible FDs, the other
  // half sample evenly across the g1 spectrum. A space of only
  // near-holding FDs would make every data-informed prior
  // indistinguishable from Uniform-high and hide prior effects the
  // evaluation studies.
  std::vector<FD> chosen = must_include;
  if (!ranked.empty() && chosen.size() < cap) {
    const size_t remaining = cap - chosen.size();
    const size_t head = std::min(remaining / 2, ranked.size());
    std::vector<bool> taken(ranked.size(), false);
    for (size_t i = 0; i < head; ++i) {
      chosen.push_back(ranked[i].fd);
      taken[i] = true;
    }
    const size_t spread = remaining - head;
    for (size_t j = 0; j < spread && chosen.size() < cap; ++j) {
      // Evenly spaced positions over the full ranking (skipping
      // already-taken slots forward).
      size_t pos = spread <= 1
                       ? ranked.size() - 1
                       : head + (j * (ranked.size() - head - 1)) /
                                    (spread - 1);
      while (pos < ranked.size() && taken[pos]) ++pos;
      if (pos >= ranked.size()) break;
      chosen.push_back(ranked[pos].fd);
      taken[pos] = true;
    }
    // Top up (small spaces may have exhausted positions).
    for (size_t i = 0; i < ranked.size() && chosen.size() < cap; ++i) {
      if (!taken[i]) {
        chosen.push_back(ranked[i].fd);
        taken[i] = true;
      }
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return Make(rel.schema(), std::move(chosen));
}

Result<size_t> HypothesisSpace::IndexOf(const FD& fd) const {
  auto it = index_.find(fd);
  if (it == index_.end()) {
    // The FD may reference attributes outside this space's schema, so
    // format it numerically rather than via schema names.
    return Status::NotFound(
        "FD not in hypothesis space: lhs_mask=" +
        std::to_string(fd.lhs.mask()) + " rhs=" + std::to_string(fd.rhs));
  }
  return it->second;
}

std::vector<size_t> HypothesisSpace::RelatedIndices(size_t idx) const {
  std::vector<size_t> out;
  const FD& target = fds_.at(idx);
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (i == idx) continue;
    if (fds_[i].IsRelatedTo(target)) out.push_back(i);
  }
  return out;
}

}  // namespace et
