#include "fd/eval_cache.h"

#include <atomic>
#include <new>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "robustness/fault.h"

namespace et {
namespace {

uint64_t SquareCount(const Partition& part) {
  return part.AgreeingPairCount();
}

/// A failed insert must never fail the query: the partition is already
/// built, so the cache hands it out uncached. Logged once per process
/// (degradation is a steady-state condition, not a per-query event).
void NoteDegraded(const char* why) {
  ET_COUNTER_INC("fd.cache.degraded");
  static std::atomic<bool> logged{false};
  if (!logged.exchange(true, std::memory_order_relaxed)) {
    ET_LOG(Warn) << "eval cache degraded to uncached partition builds ("
                 << why << "); subsequent degradations are silent";
  }
}

}  // namespace

EvalCache::EvalCache(const Relation& rel, EvalCacheOptions options)
    : rel_(&rel), options_(options) {}

uint64_t EvalCache::FingerprintRows(const std::vector<RowId>& rows) {
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(rows.size());
  for (RowId r : rows) mix(r);
  return h == 0 ? 1 : h;  // 0 is reserved for the whole relation
}

std::shared_ptr<const Partition> EvalCache::Get(AttrSet attrs) {
  return GetImpl(attrs, /*rows_fp=*/0, /*rows=*/nullptr);
}

std::shared_ptr<const Partition> EvalCache::Get(
    AttrSet attrs, const std::vector<RowId>& rows) {
  return GetImpl(attrs, FingerprintRows(rows), &rows);
}

std::shared_ptr<const Partition> EvalCache::GetImpl(
    AttrSet attrs, uint64_t rows_fp, const std::vector<RowId>* rows) {
  const Key key{attrs.mask(), rows_fp};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      ET_COUNTER_INC("fd.cache.hits");
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.partition;
    }
    ++stats_.misses;
    ET_COUNTER_INC("fd.cache.misses");
  }
  // Build outside the lock; concurrent misses on the same key may
  // duplicate work but stay correct (first insert wins).
  std::shared_ptr<const Partition> built =
      BuildUncached(attrs, rows_fp, rows);
  const size_t bytes = built->ApproxBytes();

  // Graceful degradation: inserting is an optimization, not a
  // requirement. If the bookkeeping allocation fails (bad_alloc, real
  // or injected) the caller still gets the freshly built partition —
  // only future reuse is lost.
  try {
    if (FaultInjector::Global().enabled()) {
      Status fault = FaultInjector::Global().Hit("cache.insert");
      if (!fault.ok()) {
        NoteDegraded("injected insert fault");
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.degraded;
        }
        return built;
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) return it->second.partition;
    lru_.push_front(key);
    entries_.emplace(key, Entry{built, bytes, lru_.begin()});
    stats_.bytes += bytes;
    // Evict least-recently-used entries past the budget, always keeping
    // the entry just inserted.
    while (stats_.bytes > options_.byte_budget && entries_.size() > 1) {
      const Key victim = lru_.back();
      lru_.pop_back();
      auto vit = entries_.find(victim);
      stats_.bytes -= vit->second.bytes;
      entries_.erase(vit);
      ++stats_.evictions;
      ET_COUNTER_INC("fd.cache.evictions");
    }
    ET_GAUGE_SET("fd.cache.bytes", static_cast<double>(stats_.bytes));
  } catch (const std::bad_alloc&) {
    NoteDegraded("allocation failure during insert");
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.degraded;
  } catch (const InjectedFault& e) {
    NoteDegraded(e.what());
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.degraded;
  }
  return built;
}

std::shared_ptr<const Partition> EvalCache::Peek(AttrSet attrs,
                                                 uint64_t rows_fp) {
  const Key key{attrs.mask(), rows_fp};
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.partition;
}

std::shared_ptr<const Partition> EvalCache::BuildUncached(
    AttrSet attrs, uint64_t rows_fp, const std::vector<RowId>* rows) {
  if (options_.use_product && attrs.size() >= 2) {
    // TANE's product: when some one-attribute-smaller subset is already
    // resident — the common case, since scoring an FD partitions the
    // LHS right before LHS ∪ {RHS} — peel that attribute and combine
    // the two partitions in O(|classes|) instead of rescanning the
    // relation. With no resident subset a direct scan is cheaper than
    // building the product chain from single columns.
    for (const int attr : attrs.ToIndices()) {
      std::shared_ptr<const Partition> rest =
          Peek(attrs.WithoutAttr(attr), rows_fp);
      if (rest == nullptr) continue;
      std::shared_ptr<const Partition> single =
          GetImpl(AttrSet::Single(attr), rows_fp, rows);
      const size_t universe = rows ? rows->size() : rel_->num_rows();
      return std::make_shared<Partition>(
          Partition::Product(*rest, *single, universe));
    }
  }
  if (rows == nullptr) {
    return std::make_shared<Partition>(Partition::Build(*rel_, attrs));
  }
  return std::make_shared<Partition>(Partition::Build(*rel_, attrs, *rows));
}

uint64_t EvalCache::ViolatingImpl(const FD& fd, uint64_t rows_fp,
                                  const std::vector<RowId>* rows) {
  ET_TRACE_SCOPE("fd.cache.violating_pairs");
  const uint64_t lhs_pairs =
      SquareCount(*GetImpl(fd.lhs, rows_fp, rows));
  const uint64_t full_pairs =
      SquareCount(*GetImpl(fd.lhs.With(fd.rhs), rows_fp, rows));
  return lhs_pairs - full_pairs;
}

uint64_t EvalCache::ViolatingPairCount(const FD& fd) {
  return ViolatingImpl(fd, 0, nullptr);
}

uint64_t EvalCache::ViolatingPairCount(const FD& fd,
                                       const std::vector<RowId>& rows) {
  return ViolatingImpl(fd, FingerprintRows(rows), &rows);
}

double EvalCache::G1(const FD& fd) {
  const size_t n = rel_->num_rows();
  if (n < 2) return 0.0;
  return static_cast<double>(ViolatingImpl(fd, 0, nullptr)) /
         (static_cast<double>(n) * static_cast<double>(n));
}

double EvalCache::G1(const FD& fd, const std::vector<RowId>& rows) {
  if (rows.size() < 2) return 0.0;
  const double n = static_cast<double>(rows.size());
  return static_cast<double>(
             ViolatingImpl(fd, FingerprintRows(rows), &rows)) /
         (n * n);
}

double EvalCache::PairwiseConfidence(const FD& fd) {
  const uint64_t lhs_pairs = SquareCount(*GetImpl(fd.lhs, 0, nullptr));
  if (lhs_pairs == 0) return 1.0;
  const uint64_t full_pairs =
      SquareCount(*GetImpl(fd.lhs.With(fd.rhs), 0, nullptr));
  return 1.0 - static_cast<double>(lhs_pairs - full_pairs) /
                   static_cast<double>(lhs_pairs);
}

double EvalCache::PairwiseConfidence(const FD& fd,
                                     const std::vector<RowId>& rows) {
  const uint64_t fp = FingerprintRows(rows);
  const uint64_t lhs_pairs = SquareCount(*GetImpl(fd.lhs, fp, &rows));
  if (lhs_pairs == 0) return 1.0;
  const uint64_t full_pairs =
      SquareCount(*GetImpl(fd.lhs.With(fd.rhs), fp, &rows));
  return 1.0 - static_cast<double>(lhs_pairs - full_pairs) /
                   static_cast<double>(lhs_pairs);
}

void EvalCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  stats_.bytes = 0;
  ET_GAUGE_SET("fd.cache.bytes", 0.0);
}

EvalCacheStats EvalCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace et
