#include "fd/error_detector.h"

#include <algorithm>
#include <memory>

#include "fd/eval_cache.h"
#include "fd/partition.h"

namespace et {
namespace {

/// Partition of fd.lhs over `rows`: from the cache when provided,
/// freshly built otherwise. The shared_ptr keeps cache entries alive
/// across evictions.
std::shared_ptr<const Partition> LhsPartition(
    const Relation& rel, const std::vector<RowId>& rows, AttrSet lhs,
    EvalCache* cache) {
  if (cache != nullptr) return cache->Get(lhs, rows);
  return std::make_shared<Partition>(Partition::Build(rel, lhs, rows));
}

/// Map RowId -> position within `rows` (SIZE_MAX for absent rows).
std::vector<size_t> PositionIndex(const std::vector<RowId>& rows) {
  RowId max_row = 0;
  for (RowId r : rows) max_row = std::max(max_row, r);
  std::vector<size_t> pos_of(static_cast<size_t>(max_row) + 1, SIZE_MAX);
  for (size_t i = 0; i < rows.size(); ++i) pos_of[rows[i]] = i;
  return pos_of;
}

}  // namespace

std::vector<double> DirtyProbabilitiesForFD(const Relation& rel,
                                            const std::vector<RowId>& rows,
                                            const FD& fd,
                                            double confidence,
                                            EvalCache* cache) {
  confidence = std::clamp(confidence, 0.0, 1.0);
  // Classify every row in `rows` as violating / satisfying-only /
  // inapplicable using the LHS partition restricted to these rows.
  enum : uint8_t { kNone = 0, kSat = 1, kViol = 2 };
  std::vector<uint8_t> state(rows.size(), kNone);
  const std::vector<size_t> pos_of = PositionIndex(rows);
  const std::shared_ptr<const Partition> part =
      LhsPartition(rel, rows, fd.lhs, cache);
  for (const auto& cls : part->classes()) {
    // A row violates if any same-class row differs on the RHS; it
    // satisfies (only) if all same-class rows agree. With the class's
    // RHS-value census this is O(|class|).
    bool rhs_uniform = true;
    const Dictionary::Code first = rel.code(cls[0], fd.rhs);
    for (RowId r : cls) {
      if (rel.code(r, fd.rhs) != first) {
        rhs_uniform = false;
        break;
      }
    }
    if (rhs_uniform) {
      for (RowId r : cls) state[pos_of[r]] = kSat;
      continue;
    }
    // Mixed class: every row has at least one partner with a different
    // RHS value, so every row is in some violating pair. Violating
    // evidence dominates any satisfying partners the row may also have.
    for (RowId r : cls) state[pos_of[r]] = kViol;
  }
  std::vector<double> out(rows.size(), 0.0);
  for (size_t i = 0; i < rows.size(); ++i) {
    switch (state[i]) {
      case kViol:
        out[i] = confidence;
        break;
      case kSat:
        out[i] = 1.0 - confidence;
        break;
      default:
        out[i] = 0.0;
    }
  }
  return out;
}

std::vector<double> DirtyProbabilities(const Relation& rel,
                                       const std::vector<RowId>& rows,
                                       const std::vector<WeightedFD>& fds,
                                       EvalCache* cache) {
  std::vector<double> num(rows.size(), 0.0);
  std::vector<double> den(rows.size(), 0.0);
  for (const WeightedFD& wfd : fds) {
    if (wfd.weight <= 0.0) continue;
    // Applicability: rows in some LHS class of size >= 2.
    const std::vector<double> p =
        DirtyProbabilitiesForFD(rel, rows, wfd.fd, wfd.confidence, cache);
    const std::shared_ptr<const Partition> part =
        LhsPartition(rel, rows, wfd.fd.lhs, cache);
    std::vector<bool> applicable(rows.size(), false);
    {
      const std::vector<size_t> pos_of = PositionIndex(rows);
      for (const auto& cls : part->classes()) {
        for (RowId r : cls) applicable[pos_of[r]] = true;
      }
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!applicable[i]) continue;
      num[i] += wfd.weight * p[i];
      den[i] += wfd.weight;
    }
  }
  std::vector<double> out(rows.size(), 0.0);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (den[i] > 0.0) out[i] = num[i] / den[i];
  }
  return out;
}

std::vector<bool> PredictDirty(const std::vector<double>& probabilities,
                               double threshold) {
  std::vector<bool> out(probabilities.size());
  for (size_t i = 0; i < probabilities.size(); ++i) {
    out[i] = probabilities[i] > threshold;
  }
  return out;
}

}  // namespace et
