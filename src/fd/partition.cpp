#include "fd/partition.h"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.h"

namespace et {
namespace {

// 64-bit FNV-1a over the code sequence of the key attributes. Collisions
// are resolved by chaining full keys below, so the hash only needs to be
// well-distributed, not perfect.
struct KeyHash {
  size_t operator()(const std::vector<Dictionary::Code>& key) const {
    uint64_t h = 1469598103934665603ULL;
    for (Dictionary::Code c : key) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Shared grouping core: `next_row(i)` maps the i-th position of the
/// row universe to its RowId (identity for whole-relation builds).
template <typename RowAt>
void BuildGroups(const Relation& rel, const std::vector<int>& cols,
                 size_t n, RowAt row_at,
                 std::vector<std::vector<RowId>>& classes,
                 size_t& num_singletons) {
  if (cols.size() == 1) {
    // Single attribute (the common case: FD LHSs are mostly one or two
    // columns): group by the code directly, no composite key.
    const int col = cols[0];
    std::unordered_map<Dictionary::Code, std::vector<RowId>> groups;
    groups.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      const RowId r = row_at(i);
      groups[rel.code(r, col)].push_back(r);
    }
    for (auto& [code, members] : groups) {
      (void)code;
      if (members.size() >= 2) {
        classes.push_back(std::move(members));
      } else {
        ++num_singletons;
      }
    }
    return;
  }
  std::unordered_map<std::vector<Dictionary::Code>, std::vector<RowId>,
                     KeyHash>
      groups;
  groups.reserve(n);
  std::vector<Dictionary::Code> key(cols.size());
  for (size_t i = 0; i < n; ++i) {
    const RowId r = row_at(i);
    for (size_t c = 0; c < cols.size(); ++c) key[c] = rel.code(r, cols[c]);
    groups[key].push_back(r);
  }
  for (auto& [k, members] : groups) {
    (void)k;
    if (members.size() >= 2) {
      classes.push_back(std::move(members));
    } else {
      ++num_singletons;
    }
  }
}

void SortClasses(std::vector<std::vector<RowId>>& classes) {
  // Deterministic class order regardless of hash iteration order.
  std::sort(classes.begin(), classes.end(),
            [](const std::vector<RowId>& a, const std::vector<RowId>& b) {
              return a[0] < b[0];
            });
}

}  // namespace

Partition Partition::Build(const Relation& rel, AttrSet attrs) {
  ET_TRACE_SCOPE("fd.partition.build");
  Partition p;
  p.num_rows_ = rel.num_rows();
  const std::vector<int> cols = attrs.ToIndices();
  BuildGroups(
      rel, cols, rel.num_rows(),
      [](size_t i) { return static_cast<RowId>(i); }, p.classes_,
      p.num_singletons_);
  SortClasses(p.classes_);
  return p;
}

Partition Partition::Build(const Relation& rel, AttrSet attrs,
                           const std::vector<RowId>& rows) {
  ET_TRACE_SCOPE("fd.partition.build");
  Partition p;
  p.num_rows_ = rows.size();
  const std::vector<int> cols = attrs.ToIndices();
  BuildGroups(rel, cols, rows.size(),
              [&rows](size_t i) { return rows[i]; }, p.classes_,
              p.num_singletons_);
  SortClasses(p.classes_);
  return p;
}

uint64_t Partition::AgreeingPairCount() const {
  uint64_t pairs = 0;
  for (const auto& cls : classes_) {
    const uint64_t n = cls.size();
    pairs += n * (n - 1) / 2;
  }
  return pairs;
}

size_t Partition::ApproxBytes() const {
  size_t bytes = sizeof(Partition) +
                 classes_.capacity() * sizeof(std::vector<RowId>);
  for (const auto& cls : classes_) {
    bytes += cls.capacity() * sizeof(RowId);
  }
  return bytes;
}

size_t Partition::TaneError() const {
  size_t kept = 0;
  for (const auto& cls : classes_) kept += cls.size() - 1;
  return kept;
}

Partition Partition::Product(const Partition& x, const Partition& y,
                             size_t num_rows) {
  ET_TRACE_SCOPE("fd.partition.product");
  // Standard TANE product over stripped partitions: a row pair agrees
  // on X ∪ Y iff it agrees on X and on Y, so product classes are the
  // size->=2 intersections of x-classes with y-classes. Rows stripped
  // from either input are singletons in the product.
  std::unordered_map<RowId, size_t> x_class_of;
  for (size_t i = 0; i < x.classes_.size(); ++i) {
    for (RowId r : x.classes_[i]) x_class_of.emplace(r, i);
  }
  Partition out;
  out.num_rows_ = num_rows;
  size_t covered = 0;
  for (const auto& y_cls : y.classes_) {
    // Bucket this y-class's rows by their x-class.
    std::unordered_map<size_t, std::vector<RowId>> buckets;
    for (RowId r : y_cls) {
      auto it = x_class_of.find(r);
      if (it != x_class_of.end()) buckets[it->second].push_back(r);
    }
    for (auto& [x_idx, members] : buckets) {
      (void)x_idx;
      if (members.size() >= 2) {
        std::sort(members.begin(), members.end());
        covered += members.size();
        out.classes_.push_back(std::move(members));
      }
    }
  }
  std::sort(out.classes_.begin(), out.classes_.end(),
            [](const std::vector<RowId>& a, const std::vector<RowId>& b) {
              return a[0] < b[0];
            });
  out.num_singletons_ = num_rows - covered;
  return out;
}

}  // namespace et
