// PairComplianceMatrix: packed per-pool compliance bits of every
// (candidate pair, hypothesis-space FD) combination.
//
// The serving hot path re-scores the learner's whole candidate pool
// every round, and every score bottoms out in CheckPair(rel, fd, a, b)
// — a per-attribute cell-code walk — repeated pool × space times. The
// compliance of a fixed pool against a fixed space over an immutable
// relation never changes, so it is computed once per session from the
// stripped partitions (shared through an EvalCache) and packed into two
// bit rows per pair:
//
//   applicable[pair]  bit f set  <=>  CheckPair != kInapplicable
//   violates[pair]    bit f set  <=>  CheckPair == kViolates
//
// Rows are pair-major (words_per_pair() consecutive uint64 words per
// pair), so "is any FD of this dirty set relevant to this pair?" is a
// word-wide AND — the staleness test of core/score_cache.h — and a
// pair's full-space evidence scan reads bits instead of cell codes.
//
// Equivalence with CheckPair: rows a != b agree on an attribute set X
// iff both sit in the same class of the stripped partition of X
// (a row stripped as a singleton agrees with no other row), so
// applicable = same LHS class, satisfies = same LHS ∪ {RHS} class.
// fd/pair_compliance_test.cpp asserts bit-for-bit agreement.

#ifndef ET_FD_PAIR_COMPLIANCE_H_
#define ET_FD_PAIR_COMPLIANCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/relation.h"
#include "fd/g1.h"
#include "fd/hypothesis_space.h"
#include "fd/violations.h"

namespace et {

class EvalCache;

class PairComplianceMatrix {
 public:
  static constexpr size_t kNotInPool = static_cast<size_t>(-1);

  /// Builds the matrix of `pool` against `space` over `rel`. When
  /// `cache` is non-null it must wrap `rel`; LHS partitions are then
  /// shared with (and through) it instead of rebuilt per FD.
  static PairComplianceMatrix Build(
      const Relation& rel, std::shared_ptr<const HypothesisSpace> space,
      const std::vector<RowPair>& pool, EvalCache* cache = nullptr);

  const HypothesisSpace& space() const { return *space_; }
  const std::shared_ptr<const HypothesisSpace>& space_ptr() const {
    return space_;
  }
  size_t num_pairs() const { return pairs_.size(); }
  size_t num_fds() const { return num_fds_; }
  size_t words_per_pair() const { return words_per_pair_; }

  /// Row index of `pair`, or kNotInPool for pairs outside the pool.
  /// Flat open-addressed probe: the lookup runs once per candidate per
  /// scoring pass, and a node-based map's pointer chase was measurable
  /// on the serving hot path.
  size_t IndexOf(const RowPair& pair) const {
    const uint64_t key = PackPair(pair);
    if (key == 0 || index_keys_.empty()) return kNotInPool;
    const size_t mask = index_keys_.size() - 1;
    size_t slot = MixKey(key) & mask;
    for (;;) {
      const uint64_t k = index_keys_[slot];
      if (k == key) return index_rows_[slot];
      if (k == 0) return kNotInPool;
      slot = (slot + 1) & mask;
    }
  }

  const RowPair& pair(size_t row) const { return pairs_[row]; }

  /// Bit rows of one pair, words_per_pair() words each.
  const uint64_t* applicable_words(size_t row) const {
    return applicable_.data() + row * words_per_pair_;
  }
  const uint64_t* violates_words(size_t row) const {
    return violates_.data() + row * words_per_pair_;
  }

  /// Compliance of pool pair `row` with FD `fd`; identical to
  /// CheckPair(rel, space.fd(fd), pair.first, pair.second).
  PairCompliance Compliance(size_t row, size_t fd) const {
    const uint64_t bit = uint64_t{1} << (fd & 63);
    const size_t word = row * words_per_pair_ + (fd >> 6);
    if ((applicable_[word] & bit) == 0) return PairCompliance::kInapplicable;
    return (violates_[word] & bit) != 0 ? PairCompliance::kViolates
                                        : PairCompliance::kSatisfies;
  }

  /// Number of FDs the pair is applicable to (popcount of its row).
  size_t ApplicableCount(size_t row) const {
    return applicable_counts_[row];
  }

  /// True when any FD of `dirty` (words_per_pair() words) is applicable
  /// to the pair — the incremental scorer's staleness test.
  bool IntersectsDirty(size_t row, const uint64_t* dirty) const {
    const uint64_t* app = applicable_words(row);
    uint64_t any = 0;
    for (size_t w = 0; w < words_per_pair_; ++w) any |= app[w] & dirty[w];
    return any != 0;
  }

  size_t ApproxBytes() const;

 private:
  /// A pool pair joins two distinct rows, so its packed key is nonzero
  /// ((0,0) packs to 0); key 0 therefore marks an empty table slot.
  static uint64_t PackPair(const RowPair& p) {
    return (static_cast<uint64_t>(p.first) << 32) | p.second;
  }
  static uint64_t MixKey(uint64_t key) {
    // splitmix64 finalizer: spreads the low-entropy row ids across the
    // table so linear probing stays short.
    key ^= key >> 30;
    key *= 0xBF58476D1CE4E5B9ULL;
    key ^= key >> 27;
    key *= 0x94D049BB133111EBULL;
    key ^= key >> 31;
    return key;
  }

  std::shared_ptr<const HypothesisSpace> space_;
  std::vector<RowPair> pairs_;
  std::vector<uint64_t> index_keys_;  // power-of-two sized, 0 = empty
  std::vector<uint32_t> index_rows_;
  size_t num_fds_ = 0;
  size_t words_per_pair_ = 0;
  std::vector<uint64_t> applicable_;  // pair-major bit rows
  std::vector<uint64_t> violates_;
  std::vector<uint32_t> applicable_counts_;
};

}  // namespace et

#endif  // ET_FD_PAIR_COMPLIANCE_H_
