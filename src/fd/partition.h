// Equivalence-class partitions of a relation under an attribute set —
// the workhorse of g1 computation and TANE-style discovery.
//
// The partition of X groups rows that agree on every attribute of X.
// We keep the *stripped* form (singleton classes dropped) familiar from
// TANE, plus enough bookkeeping to recover pair counts exactly.

#ifndef ET_FD_PARTITION_H_
#define ET_FD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "data/relation.h"
#include "fd/attrset.h"

namespace et {

/// Stripped partition: equivalence classes of size >= 2 under equality
/// on an attribute set, over a given row universe.
class Partition {
 public:
  /// Builds the partition of `attrs` over all rows of `rel` directly
  /// from the column codes, without materializing a row-id vector.
  static Partition Build(const Relation& rel, AttrSet attrs);

  /// Builds the partition over a subset of rows (ids into `rel`).
  static Partition Build(const Relation& rel, AttrSet attrs,
                         const std::vector<RowId>& rows);

  /// Classes with >= 2 rows; row ids are ascending within each class.
  const std::vector<std::vector<RowId>>& classes() const {
    return classes_;
  }

  /// Number of rows the partition was built over (including singletons).
  size_t num_rows() const { return num_rows_; }

  /// Number of singleton classes (stripped away).
  size_t num_singletons() const { return num_singletons_; }

  /// Total number of unordered row pairs that agree on the attribute
  /// set: sum over classes of C(|class|, 2).
  uint64_t AgreeingPairCount() const;

  /// Approximate heap footprint (for cache byte budgets).
  size_t ApproxBytes() const;

  /// Error measure used by TANE: rows minus number of classes (counting
  /// singletons), i.e. the minimum number of rows to delete for the
  /// partition to become a key.
  size_t TaneError() const;

  /// TANE's partition product: the partition of X ∪ Y computed from the
  /// stripped partitions of X and Y in O(|classes|) time, without
  /// touching the relation. Both inputs must have been built over the
  /// same row universe of `num_rows` rows (ids 0..num_rows-1 when built
  /// over all rows); behaviour is undefined otherwise.
  static Partition Product(const Partition& x, const Partition& y,
                           size_t num_rows);

 private:
  std::vector<std::vector<RowId>> classes_;
  size_t num_rows_ = 0;
  size_t num_singletons_ = 0;
};

}  // namespace et

#endif  // ET_FD_PARTITION_H_
