// FD-based error detection (App. A.1, Example 2): converting an
// approximate FD's confidence into per-tuple dirty probabilities.
//
// For an FD f whose scaled violation measure is m (confidence 1 - m):
// tuples of a *violating* pair are dirty with probability 1 - m, tuples
// of a *satisfying* pair with probability m. Tuples never matching f's
// LHS get no evidence from f.

#ifndef ET_FD_ERROR_DETECTOR_H_
#define ET_FD_ERROR_DETECTOR_H_

#include <vector>

#include "data/relation.h"
#include "fd/fd.h"

namespace et {

class EvalCache;

/// An FD paired with the detector's confidence that it holds (in [0,1];
/// confidence = 1 - violation measure) and a mixing weight used when
/// aggregating evidence from several FDs.
struct WeightedFD {
  FD fd;
  double confidence = 1.0;
  double weight = 1.0;
};

/// Per-tuple dirty probability from a single FD over the given rows:
/// confidence for tuples in a violating pair, 1 - confidence for tuples
/// only in satisfying pairs, 0 for tuples whose LHS never matches.
/// Output is indexed parallel to `rows`. When `cache` is non-null it
/// must wrap `rel`; LHS partitions over `rows` then come from (and are
/// shared through) the cache instead of being rebuilt per call.
std::vector<double> DirtyProbabilitiesForFD(const Relation& rel,
                                            const std::vector<RowId>& rows,
                                            const FD& fd,
                                            double confidence,
                                            EvalCache* cache = nullptr);

/// Weighted mean of per-FD dirty probabilities; FDs inapplicable to a
/// tuple do not contribute to that tuple's mixture. Tuples with no
/// applicable FD get probability 0. `cache` as above.
std::vector<double> DirtyProbabilities(const Relation& rel,
                                       const std::vector<RowId>& rows,
                                       const std::vector<WeightedFD>& fds,
                                       EvalCache* cache = nullptr);

/// Thresholds probabilities into dirty flags (p > threshold).
std::vector<bool> PredictDirty(const std::vector<double>& probabilities,
                               double threshold = 0.5);

}  // namespace et

#endif  // ET_FD_ERROR_DETECTOR_H_
