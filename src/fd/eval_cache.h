// Shared, thread-safe partition cache for the FD evaluation layer.
//
// Every g1 score, violation scan, error-detection pass, and candidate
// generation step starts from the stripped partition of some LHS
// attribute set, and hypothesis-space FDs heavily share LHS sets: the
// paper's evaluation re-scores all 38 FDs every round, but only a
// handful of distinct partitions exist. EvalCache builds each
// partition once — multi-attribute sets via TANE's partition product
// from cached sub-partitions — and hands out shared_ptrs, so scoring a
// whole hypothesis space costs a few relation scans instead of one per
// FD per round.
//
// Entries are keyed by (attribute mask, row-universe fingerprint);
// fingerprint 0 is the whole relation, subsets are identified by a
// 64-bit FNV-1a hash of their row ids (collisions are astronomically
// unlikely for the handful of universes — train/test splits — a run
// touches). An LRU byte budget bounds memory; eviction never
// invalidates a handed-out partition because entries are shared_ptrs.
//
// The cache holds a pointer to the relation and assumes it does not
// change; after mutating cells (error injection, repair), call Clear()
// or build a fresh cache.
//
// Observability: every instance feeds the process-wide counters
// fd.cache.{hits,misses,evictions} and the gauge fd.cache.bytes.

#ifndef ET_FD_EVAL_CACHE_H_
#define ET_FD_EVAL_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/relation.h"
#include "fd/fd.h"
#include "fd/partition.h"

namespace et {

struct EvalCacheOptions {
  /// Approximate cap on resident partition bytes; the most recently
  /// used entry is always retained regardless.
  size_t byte_budget = size_t{64} << 20;
  /// Derive partitions of >= 2 attributes from an already-resident
  /// one-attribute-smaller partition via Partition::Product instead of
  /// scanning the relation. Identical results; disable to cross-check.
  bool use_product = true;
};

struct EvalCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Inserts abandoned by graceful degradation (allocation failure or
  /// an injected cache.insert fault): the partition was handed out
  /// uncached instead of failing the query.
  uint64_t degraded = 0;
  size_t bytes = 0;
};

class EvalCache {
 public:
  explicit EvalCache(const Relation& rel, EvalCacheOptions options = {});

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  const Relation& relation() const { return *rel_; }

  /// Partition of `attrs` over the whole relation.
  std::shared_ptr<const Partition> Get(AttrSet attrs);

  /// Partition over a row subset. `rows` must be ascending (partition
  /// class invariants rely on it) and identical vectors must be passed
  /// for the same logical universe.
  std::shared_ptr<const Partition> Get(AttrSet attrs,
                                       const std::vector<RowId>& rows);

  /// Violating pairs of `fd`: pairs agreeing on the LHS minus pairs
  /// agreeing on LHS ∪ {RHS}, both from cached partitions.
  uint64_t ViolatingPairCount(const FD& fd);
  uint64_t ViolatingPairCount(const FD& fd, const std::vector<RowId>& rows);

  /// Scaled g1 (violating pairs / n^2), matching et::G1 exactly.
  double G1(const FD& fd);
  double G1(const FD& fd, const std::vector<RowId>& rows);

  /// 1 - violating/LHS-agreeing pairs, matching et::PairwiseConfidence.
  double PairwiseConfidence(const FD& fd);
  double PairwiseConfidence(const FD& fd, const std::vector<RowId>& rows);

  /// Drops every entry (use after mutating the relation).
  void Clear();

  EvalCacheStats stats() const;

  /// FNV-1a fingerprint of a row universe (never 0, which tags the
  /// whole relation).
  static uint64_t FingerprintRows(const std::vector<RowId>& rows);

 private:
  struct Key {
    uint32_t mask;
    uint64_t rows_fp;
    bool operator==(const Key& o) const {
      return mask == o.mask && rows_fp == o.rows_fp;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.rows_fp ^ (uint64_t{k.mask} * 0x9E3779B97F4A7C15ULL);
      h ^= h >> 33;
      h *= 0xFF51AFD7ED558CCDULL;
      h ^= h >> 33;
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    std::shared_ptr<const Partition> partition;
    size_t bytes = 0;
    std::list<Key>::iterator lru_pos;
  };

  /// `rows` is nullptr for the whole relation.
  std::shared_ptr<const Partition> GetImpl(AttrSet attrs, uint64_t rows_fp,
                                           const std::vector<RowId>* rows);
  /// Returns the resident partition for (attrs, rows_fp) or nullptr;
  /// never builds and never counts a hit or miss.
  std::shared_ptr<const Partition> Peek(AttrSet attrs, uint64_t rows_fp);
  std::shared_ptr<const Partition> BuildUncached(
      AttrSet attrs, uint64_t rows_fp, const std::vector<RowId>* rows);
  uint64_t ViolatingImpl(const FD& fd, uint64_t rows_fp,
                         const std::vector<RowId>* rows);

  const Relation* rel_;
  EvalCacheOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::list<Key> lru_;  // front = most recently used
  EvalCacheStats stats_;
};

}  // namespace et

#endif  // ET_FD_EVAL_CACHE_H_
