// AttrSet: a set of attribute indices as a 32-bit mask.
//
// All FD-lattice operations (subset tests, union, enumeration) are O(1)
// bit operations, which keeps hypothesis-space enumeration and the
// levelwise discovery algorithm cheap.

#ifndef ET_FD_ATTRSET_H_
#define ET_FD_ATTRSET_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "data/schema.h"

namespace et {

/// Immutable-by-convention bitmask over attribute indices [0, 32).
class AttrSet {
 public:
  constexpr AttrSet() : mask_(0) {}
  constexpr explicit AttrSet(uint32_t mask) : mask_(mask) {}

  /// Set containing exactly one attribute.
  static constexpr AttrSet Single(int attr) {
    return AttrSet(uint32_t{1} << attr);
  }

  /// Set of the given attribute indices.
  static AttrSet Of(std::initializer_list<int> attrs) {
    uint32_t m = 0;
    for (int a : attrs) m |= uint32_t{1} << a;
    return AttrSet(m);
  }

  /// Full set {0, ..., n-1}.
  static constexpr AttrSet FullSet(int n) {
    return AttrSet(n >= 32 ? ~uint32_t{0}
                           : ((uint32_t{1} << n) - 1));
  }

  constexpr uint32_t mask() const { return mask_; }
  constexpr bool empty() const { return mask_ == 0; }
  constexpr int size() const { return std::popcount(mask_); }

  constexpr bool Contains(int attr) const {
    return (mask_ >> attr) & 1u;
  }
  constexpr bool ContainsAll(AttrSet other) const {
    return (mask_ & other.mask_) == other.mask_;
  }
  /// Proper subset.
  constexpr bool IsProperSubsetOf(AttrSet other) const {
    return mask_ != other.mask_ && other.ContainsAll(*this);
  }
  constexpr bool Intersects(AttrSet other) const {
    return (mask_ & other.mask_) != 0;
  }

  constexpr AttrSet Union(AttrSet other) const {
    return AttrSet(mask_ | other.mask_);
  }
  constexpr AttrSet Intersect(AttrSet other) const {
    return AttrSet(mask_ & other.mask_);
  }
  constexpr AttrSet Without(AttrSet other) const {
    return AttrSet(mask_ & ~other.mask_);
  }
  constexpr AttrSet With(int attr) const {
    return AttrSet(mask_ | (uint32_t{1} << attr));
  }
  constexpr AttrSet WithoutAttr(int attr) const {
    return AttrSet(mask_ & ~(uint32_t{1} << attr));
  }

  /// Attribute indices in ascending order.
  std::vector<int> ToIndices() const;

  /// "A,B" given the schema (or "{}" for the empty set).
  std::string ToString(const Schema& schema) const;

  constexpr bool operator==(const AttrSet& o) const {
    return mask_ == o.mask_;
  }
  constexpr bool operator!=(const AttrSet& o) const {
    return mask_ != o.mask_;
  }
  /// Order by mask value (deterministic container ordering).
  constexpr bool operator<(const AttrSet& o) const {
    return mask_ < o.mask_;
  }

 private:
  uint32_t mask_;
};

/// Enumerates all non-empty subsets of `universe` with size in
/// [min_size, max_size], ascending by mask value.
std::vector<AttrSet> EnumerateSubsets(AttrSet universe, int min_size,
                                      int max_size);

}  // namespace et

#endif  // ET_FD_ATTRSET_H_
