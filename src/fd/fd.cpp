#include "fd/fd.h"

#include "common/strings.h"

namespace et {

std::string FD::ToString(const Schema& schema) const {
  return lhs.ToString(schema) + "->" + schema.name(rhs);
}

Result<FD> ParseFD(const std::string& text, const Schema& schema) {
  const size_t arrow = text.find("->");
  if (arrow == std::string::npos) {
    return Status::InvalidArgument("FD missing '->': " + text);
  }
  const std::string lhs_text = text.substr(0, arrow);
  const std::string rhs_text{Trim(text.substr(arrow + 2))};
  if (rhs_text.empty()) {
    return Status::InvalidArgument("FD missing RHS: " + text);
  }
  AttrSet lhs;
  for (const std::string& part : Split(lhs_text, ',')) {
    const std::string name{Trim(part)};
    if (name.empty()) {
      return Status::InvalidArgument("empty LHS attribute in: " + text);
    }
    ET_ASSIGN_OR_RETURN(int idx, schema.IndexOf(name));
    lhs = lhs.With(idx);
  }
  if (lhs.empty()) {
    return Status::InvalidArgument("FD needs a non-empty LHS: " + text);
  }
  ET_ASSIGN_OR_RETURN(int rhs, schema.IndexOf(rhs_text));
  FD fd(lhs, rhs);
  if (!fd.IsValid(schema)) {
    return Status::InvalidArgument("FD is trivial or invalid: " + text);
  }
  return fd;
}

}  // namespace et
