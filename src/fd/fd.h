// FD: a normalized functional dependency X -> A (single-attribute RHS,
// X non-empty, A not in X), plus the lattice relations the paper's
// "+"-metrics rely on (App. A.2: X -> Z is a *superset* of XY -> Z; a
// subset FD is implied by its superset).

#ifndef ET_FD_FD_H_
#define ET_FD_FD_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "fd/attrset.h"

namespace et {

/// A normalized, non-trivial functional dependency lhs -> rhs.
struct FD {
  AttrSet lhs;
  int rhs = -1;

  FD() = default;
  FD(AttrSet lhs_in, int rhs_in) : lhs(lhs_in), rhs(rhs_in) {}

  /// Total number of attributes mentioned (|X| + 1).
  int NumAttributes() const { return lhs.size() + 1; }

  /// Validity: non-empty LHS, RHS in range, RHS not in LHS.
  bool IsValid(const Schema& schema) const {
    return !lhs.empty() && rhs >= 0 && rhs < schema.num_attributes() &&
           !lhs.Contains(rhs);
  }

  /// Paper's lattice relation: this FD is a *superset* of `other` when
  /// they share the RHS and this LHS is a proper subset of other's (a
  /// superset FD is the logically stronger statement).
  bool IsSupersetOf(const FD& other) const {
    return rhs == other.rhs && lhs.IsProperSubsetOf(other.lhs);
  }
  /// Dual of IsSupersetOf.
  bool IsSubsetOf(const FD& other) const { return other.IsSupersetOf(*this); }

  /// Superset, subset, or equal (the family the "+"-metrics credit).
  bool IsRelatedTo(const FD& other) const {
    return *this == other || IsSupersetOf(other) || IsSubsetOf(other);
  }

  /// "A,B->C" given the schema.
  std::string ToString(const Schema& schema) const;

  bool operator==(const FD& o) const {
    return lhs == o.lhs && rhs == o.rhs;
  }
  bool operator!=(const FD& o) const { return !(*this == o); }
  /// Deterministic ordering: by RHS, then LHS mask.
  bool operator<(const FD& o) const {
    if (rhs != o.rhs) return rhs < o.rhs;
    return lhs < o.lhs;
  }
};

/// Parses "A,B->C" (attribute names from the schema; spaces allowed).
Result<FD> ParseFD(const std::string& text, const Schema& schema);

/// Hash functor for unordered containers keyed by FD.
struct FDHash {
  size_t operator()(const FD& fd) const {
    return std::hash<uint64_t>()(
        (static_cast<uint64_t>(fd.lhs.mask()) << 8) ^
        static_cast<uint64_t>(fd.rhs));
  }
};

}  // namespace et

#endif  // ET_FD_FD_H_
