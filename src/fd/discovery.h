// Unsupervised approximate-FD discovery (TANE-style levelwise search).
//
// App. A.1: "If the dataset is completely clean ... its set of
// approximate FDs can be learned with an unsupervised method". This is
// that baseline; the rest of the paper exists because it breaks down on
// dirty data, which the examples and benches demonstrate.

#ifndef ET_FD_DISCOVERY_H_
#define ET_FD_DISCOVERY_H_

#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "fd/fd.h"

namespace et {

struct DiscoveryOptions {
  /// An FD is reported when g1 <= threshold.
  double g1_threshold = 0.0;
  /// Maximum LHS size explored.
  int max_lhs_size = 3;
  /// Report only minimal FDs: X -> A such that no proper subset of X
  /// also determines A within the threshold.
  bool minimal_only = true;
  /// Use TANE's partition product with a per-level cache instead of
  /// re-partitioning the relation for every candidate (same results,
  /// large speedup on wide schemas; disable to cross-check).
  bool use_partition_cache = true;
};

/// A discovered FD with its measured g1.
struct DiscoveredFD {
  FD fd;
  double g1 = 0.0;
};

/// Levelwise discovery of all (minimal) approximate FDs with
/// g1 <= threshold. Deterministic output order (by FD ordering).
Result<std::vector<DiscoveredFD>> DiscoverFDs(
    const Relation& rel, const DiscoveryOptions& options = {});

}  // namespace et

#endif  // ET_FD_DISCOVERY_H_
