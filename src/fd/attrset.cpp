#include "fd/attrset.h"

namespace et {

std::vector<int> AttrSet::ToIndices() const {
  std::vector<int> out;
  out.reserve(size());
  uint32_t m = mask_;
  while (m) {
    const int a = std::countr_zero(m);
    out.push_back(a);
    m &= m - 1;
  }
  return out;
}

std::string AttrSet::ToString(const Schema& schema) const {
  if (empty()) return "{}";
  std::string out;
  bool first = true;
  for (int a : ToIndices()) {
    if (!first) out += ",";
    first = false;
    out += schema.name(a);
  }
  return out;
}

std::vector<AttrSet> EnumerateSubsets(AttrSet universe, int min_size,
                                      int max_size) {
  std::vector<AttrSet> out;
  const uint32_t u = universe.mask();
  // Iterate submasks of u in ascending order via the standard
  // (s - u) & u trick run in reverse; simpler: walk all masks up to u and
  // keep those contained in u. The universes here are tiny (<= 32 bits
  // set but schemas <= 19 attributes), and enumeration happens once per
  // experiment, so clarity wins over the submask-walk micro-optimization
  // for sparse universes.
  if (u == 0) return out;
  for (uint32_t s = u;; s = (s - 1) & u) {
    if (s != 0) {
      const int sz = std::popcount(s);
      if (sz >= min_size && sz <= max_size) out.push_back(AttrSet(s));
    }
    if (s == 0) break;
  }
  // The submask walk yields descending order; flip for ascending.
  std::vector<AttrSet> asc(out.rbegin(), out.rend());
  return asc;
}

}  // namespace et
