#include "fd/g1.h"

#include <unordered_map>

#include "obs/trace.h"

namespace et {
namespace {

struct PairCounts {
  uint64_t agreeing = 0;   // pairs matching on LHS
  uint64_t violating = 0;  // of those, pairs differing on RHS
};

PairCounts CountPairs(const Relation& rel, const FD& fd,
                      const std::vector<RowId>& rows) {
  ET_TRACE_SCOPE("fd.g1.eval");
  PairCounts out;
  const Partition part = Partition::Build(rel, fd.lhs, rows);
  for (const auto& cls : part.classes()) {
    const uint64_t n = cls.size();
    out.agreeing += n * (n - 1) / 2;
    // Within an LHS class, satisfied pairs are those agreeing on the
    // RHS; count via RHS-value frequencies.
    std::unordered_map<Dictionary::Code, uint64_t> freq;
    freq.reserve(cls.size());
    for (RowId r : cls) ++freq[rel.code(r, fd.rhs)];
    uint64_t satisfied = 0;
    for (const auto& [code, cnt] : freq) {
      (void)code;
      satisfied += cnt * (cnt - 1) / 2;
    }
    out.violating += n * (n - 1) / 2 - satisfied;
  }
  return out;
}

std::vector<RowId> AllRows(const Relation& rel) {
  std::vector<RowId> rows(rel.num_rows());
  for (RowId r = 0; r < rel.num_rows(); ++r) rows[r] = r;
  return rows;
}

}  // namespace

PairCompliance CheckPair(const Relation& rel, const FD& fd, RowId a,
                         RowId b) {
  for (int col : fd.lhs.ToIndices()) {
    if (rel.code(a, col) != rel.code(b, col)) {
      return PairCompliance::kInapplicable;
    }
  }
  return rel.code(a, fd.rhs) == rel.code(b, fd.rhs)
             ? PairCompliance::kSatisfies
             : PairCompliance::kViolates;
}

uint64_t ViolatingPairCount(const Relation& rel, const FD& fd) {
  return ViolatingPairCount(rel, fd, AllRows(rel));
}

uint64_t ViolatingPairCount(const Relation& rel, const FD& fd,
                            const std::vector<RowId>& rows) {
  return CountPairs(rel, fd, rows).violating;
}

double G1(const Relation& rel, const FD& fd) {
  return G1(rel, fd, AllRows(rel));
}

double G1(const Relation& rel, const FD& fd,
          const std::vector<RowId>& rows) {
  if (rows.size() < 2) return 0.0;
  const PairCounts counts = CountPairs(rel, fd, rows);
  const double n = static_cast<double>(rows.size());
  return static_cast<double>(counts.violating) / (n * n);
}

double PairwiseConfidence(const Relation& rel, const FD& fd) {
  return PairwiseConfidence(rel, fd, AllRows(rel));
}

double PairwiseConfidence(const Relation& rel, const FD& fd,
                          const std::vector<RowId>& rows) {
  const PairCounts counts = CountPairs(rel, fd, rows);
  if (counts.agreeing == 0) return 1.0;
  return 1.0 - static_cast<double>(counts.violating) /
                   static_cast<double>(counts.agreeing);
}

}  // namespace et
