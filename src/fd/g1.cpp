#include "fd/g1.h"

#include <algorithm>
#include <bit>

#include "obs/trace.h"

namespace et {
namespace {

struct PairCounts {
  uint64_t agreeing = 0;   // pairs matching on LHS
  uint64_t violating = 0;  // of those, pairs differing on RHS
};

/// Pairs within `cls` that agree on the RHS, via sort-and-run-length
/// over a reused scratch buffer. A hash census (the previous
/// implementation) dominated the inner loop: classes are small and
/// sorting a flat code array beats per-class hash-map churn.
uint64_t SatisfiedPairs(const Relation& rel, int rhs,
                        const std::vector<RowId>& cls) {
  static thread_local std::vector<Dictionary::Code> scratch;
  scratch.clear();
  scratch.reserve(cls.size());
  for (RowId r : cls) scratch.push_back(rel.code(r, rhs));
  std::sort(scratch.begin(), scratch.end());
  uint64_t satisfied = 0;
  for (size_t i = 0; i < scratch.size();) {
    size_t j = i + 1;
    while (j < scratch.size() && scratch[j] == scratch[i]) ++j;
    const uint64_t run = j - i;
    satisfied += run * (run - 1) / 2;
    i = j;
  }
  return satisfied;
}

PairCounts CountPairs(const Relation& rel, const FD& fd,
                      const Partition& part) {
  ET_TRACE_SCOPE("fd.g1.eval");
  PairCounts out;
  for (const auto& cls : part.classes()) {
    const uint64_t n = cls.size();
    out.agreeing += n * (n - 1) / 2;
    out.violating += n * (n - 1) / 2 - SatisfiedPairs(rel, fd.rhs, cls);
  }
  return out;
}

PairCounts CountPairs(const Relation& rel, const FD& fd) {
  return CountPairs(rel, fd, Partition::Build(rel, fd.lhs));
}

PairCounts CountPairs(const Relation& rel, const FD& fd,
                      const std::vector<RowId>& rows) {
  return CountPairs(rel, fd, Partition::Build(rel, fd.lhs, rows));
}

}  // namespace

PairCompliance CheckPair(const Relation& rel, const FD& fd, RowId a,
                         RowId b) {
  // Walk the LHS mask directly; ToIndices() would allocate and this is
  // the innermost loop of pair prediction.
  for (uint32_t m = fd.lhs.mask(); m != 0; m &= m - 1) {
    const int col = std::countr_zero(m);
    if (rel.code(a, col) != rel.code(b, col)) {
      return PairCompliance::kInapplicable;
    }
  }
  return rel.code(a, fd.rhs) == rel.code(b, fd.rhs)
             ? PairCompliance::kSatisfies
             : PairCompliance::kViolates;
}

uint64_t ViolatingPairCount(const Relation& rel, const FD& fd) {
  return CountPairs(rel, fd).violating;
}

uint64_t ViolatingPairCount(const Relation& rel, const FD& fd,
                            const std::vector<RowId>& rows) {
  return CountPairs(rel, fd, rows).violating;
}

double G1(const Relation& rel, const FD& fd) {
  if (rel.num_rows() < 2) return 0.0;
  const PairCounts counts = CountPairs(rel, fd);
  const double n = static_cast<double>(rel.num_rows());
  return static_cast<double>(counts.violating) / (n * n);
}

double G1(const Relation& rel, const FD& fd,
          const std::vector<RowId>& rows) {
  if (rows.size() < 2) return 0.0;
  const PairCounts counts = CountPairs(rel, fd, rows);
  const double n = static_cast<double>(rows.size());
  return static_cast<double>(counts.violating) / (n * n);
}

double PairwiseConfidence(const Relation& rel, const FD& fd) {
  const PairCounts counts = CountPairs(rel, fd);
  if (counts.agreeing == 0) return 1.0;
  return 1.0 - static_cast<double>(counts.violating) /
                   static_cast<double>(counts.agreeing);
}

double PairwiseConfidence(const Relation& rel, const FD& fd,
                          const std::vector<RowId>& rows) {
  const PairCounts counts = CountPairs(rel, fd, rows);
  if (counts.agreeing == 0) return 1.0;
  return 1.0 - static_cast<double>(counts.violating) /
                   static_cast<double>(counts.agreeing);
}

}  // namespace et
