// The scaled g1 approximation measure (App. A.1) and per-pair
// compliance tests.
//
//   g1(X -> A, r) = |{(t1,t2) : t1[X]=t2[X], t1[A]!=t2[A]}| / |r|^2
//
// counted over unordered pairs of distinct tuples, matching the paper's
// worked example (Table 1: g1(Team -> City) = 1/25 on 5 tuples).

#ifndef ET_FD_G1_H_
#define ET_FD_G1_H_

#include <cstdint>

#include "data/relation.h"
#include "fd/fd.h"
#include "fd/partition.h"

namespace et {

/// Relationship of one tuple pair to one FD.
enum class PairCompliance {
  /// LHS values differ: the pair says nothing about the FD.
  kInapplicable,
  /// LHS values agree and RHS values agree.
  kSatisfies,
  /// LHS values agree and RHS values differ: a violation.
  kViolates,
};

/// Compliance of the pair (a, b) with `fd`.
PairCompliance CheckPair(const Relation& rel, const FD& fd, RowId a,
                         RowId b);

/// Number of unordered violating pairs of `fd` over all rows.
uint64_t ViolatingPairCount(const Relation& rel, const FD& fd);

/// Number of unordered violating pairs over a row subset.
uint64_t ViolatingPairCount(const Relation& rel, const FD& fd,
                            const std::vector<RowId>& rows);

/// Scaled g1 over all rows; 0 for relations with < 2 rows.
double G1(const Relation& rel, const FD& fd);

/// Scaled g1 over a row subset (denominator |rows|^2).
double G1(const Relation& rel, const FD& fd,
          const std::vector<RowId>& rows);

/// The FD's *confidence* 1 - g1_pairfrac, where g1_pairfrac normalizes
/// violating pairs by the number of LHS-agreeing pairs instead of n^2.
/// This is the per-pair probability that an LHS-matching pair satisfies
/// the FD — the quantity the belief models track. Returns 1 when no pair
/// matches on the LHS (the FD is vacuously satisfied).
double PairwiseConfidence(const Relation& rel, const FD& fd);

/// PairwiseConfidence over a row subset.
double PairwiseConfidence(const Relation& rel, const FD& fd,
                          const std::vector<RowId>& rows);

}  // namespace et

#endif  // ET_FD_G1_H_
