// HypothesisSpace: the fixed, finite set of candidate FDs that beliefs
// are defined over.
//
// The paper's empirical study tracks "a model for 38 approximate FDs for
// each dataset ... each FD has at most four attributes" (App. C.1); the
// user study tracks all candidate FDs over 3-5 attribute scenario
// schemas. Both shapes are built here.

#ifndef ET_FD_HYPOTHESIS_SPACE_H_
#define ET_FD_HYPOTHESIS_SPACE_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/relation.h"
#include "fd/fd.h"

namespace et {

/// An ordered, deduplicated set of candidate FDs with O(1) FD -> index
/// lookup. The index of an FD is its identity everywhere downstream
/// (belief vectors, MAE, policies).
class HypothesisSpace {
 public:
  HypothesisSpace() = default;

  /// Builds a space from explicit FDs; rejects duplicates and FDs
  /// invalid under the schema.
  static Result<HypothesisSpace> Make(const Schema& schema,
                                      std::vector<FD> fds);

  /// All valid normalized FDs whose total attribute count (|LHS|+1) is
  /// at most `max_total_attrs`.
  static HypothesisSpace EnumerateAll(const Schema& schema,
                                      int max_total_attrs = 4);

  /// The paper's evaluation shape: enumerate all FDs up to
  /// `max_total_attrs`, then keep `cap` of them — every FD in
  /// `must_include` plus the lowest-g1 (most plausible) remaining
  /// candidates, with deterministic tie-breaking. `rel` supplies the
  /// data used for the g1 ranking.
  static Result<HypothesisSpace> BuildCapped(
      const Relation& rel, int max_total_attrs, size_t cap,
      const std::vector<FD>& must_include);

  const Schema& schema() const { return schema_; }
  const std::vector<FD>& fds() const { return fds_; }
  size_t size() const { return fds_.size(); }
  const FD& fd(size_t idx) const { return fds_.at(idx); }

  /// Index of `fd`, or NotFound when the FD is outside the space.
  Result<size_t> IndexOf(const FD& fd) const;
  bool Contains(const FD& fd) const { return index_.count(fd) > 0; }

  /// Indices of FDs related to fds_[idx] by the paper's subset/superset
  /// lattice relation (excluding idx itself).
  std::vector<size_t> RelatedIndices(size_t idx) const;

 private:
  Schema schema_;
  std::vector<FD> fds_;
  std::unordered_map<FD, size_t, FDHash> index_;
};

}  // namespace et

#endif  // ET_FD_HYPOTHESIS_SPACE_H_
