// Violation enumeration: the pairs of tuples (and the cells) that
// witness an FD's violations. Used by the error detector, the learner's
// candidate-pair pool, and the examples.

#ifndef ET_FD_VIOLATIONS_H_
#define ET_FD_VIOLATIONS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/relation.h"
#include "fd/fd.h"

namespace et {

class EvalCache;

/// An unordered pair of rows; first < second by construction.
struct RowPair {
  RowId first = 0;
  RowId second = 0;

  RowPair() = default;
  RowPair(RowId a, RowId b)
      : first(a < b ? a : b), second(a < b ? b : a) {}

  bool operator==(const RowPair& o) const {
    return first == o.first && second == o.second;
  }
  bool operator<(const RowPair& o) const {
    if (first != o.first) return first < o.first;
    return second < o.second;
  }
};

struct RowPairHash {
  size_t operator()(const RowPair& p) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(p.first) << 32) |
                                 p.second);
  }
};

/// A cell position (row, column), the granularity of C_v in App. A.1.
struct Cell {
  RowId row = 0;
  int col = 0;

  bool operator==(const Cell& o) const {
    return row == o.row && col == o.col;
  }
  bool operator<(const Cell& o) const {
    if (row != o.row) return row < o.row;
    return col < o.col;
  }
};

struct CellHash {
  size_t operator()(const Cell& c) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(c.row) << 32) |
                                 static_cast<uint32_t>(c.col));
  }
};

/// Enumerates the violating pairs of `fd`, ascending, stopping after
/// `limit` pairs (0 = unlimited).
std::vector<RowPair> ViolatingPairs(const Relation& rel, const FD& fd,
                                    size_t limit = 0);

/// Enumerates LHS-agreeing pairs of `fd` (both satisfying and
/// violating), ascending, stopping after `limit` pairs (0 = unlimited).
std::vector<RowPair> AgreeingPairs(const Relation& rel, const FD& fd,
                                   size_t limit = 0);

/// The violating cells C_v of one violating pair: the LHS cells and the
/// RHS cell of both tuples (App. A.1 defines a violation over the X and
/// Y cells of the two tuples).
std::vector<Cell> ViolationCells(const FD& fd, const RowPair& pair);

/// Union of ViolationCells over all violating pairs of all `fds`
/// (deduplicated, sorted).
std::vector<Cell> AllViolationCells(const Relation& rel,
                                    const std::vector<FD>& fds);

/// Cache-backed variants: the LHS partition comes from `cache` (built
/// once, shared across FDs with the same LHS) instead of a fresh
/// relation scan per call. Results are identical to the uncached
/// functions over cache.relation().
std::vector<RowPair> ViolatingPairs(EvalCache& cache, const FD& fd,
                                    size_t limit = 0);
std::vector<RowPair> AgreeingPairs(EvalCache& cache, const FD& fd,
                                   size_t limit = 0);
std::vector<Cell> AllViolationCells(EvalCache& cache,
                                    const std::vector<FD>& fds);

}  // namespace et

#endif  // ET_FD_VIOLATIONS_H_
