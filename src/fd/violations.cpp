#include "fd/violations.h"

#include <algorithm>
#include <unordered_set>

#include "fd/eval_cache.h"
#include "fd/partition.h"

namespace et {
namespace {

// Walks LHS classes, invoking `emit(a, b)` on pairs until it returns
// false. `violating_only` selects violating vs all agreeing pairs.
template <typename Emit>
void ForEachPair(const Relation& rel, const FD& fd, const Partition& part,
                 bool violating_only, Emit emit) {
  for (const auto& cls : part.classes()) {
    for (size_t i = 0; i < cls.size(); ++i) {
      for (size_t j = i + 1; j < cls.size(); ++j) {
        const bool violates =
            rel.code(cls[i], fd.rhs) != rel.code(cls[j], fd.rhs);
        if (violating_only && !violates) continue;
        if (!emit(cls[i], cls[j])) return;
      }
    }
  }
}

std::vector<RowPair> CollectPairs(const Relation& rel, const FD& fd,
                                  const Partition& part,
                                  bool violating_only, size_t limit) {
  std::vector<RowPair> out;
  ForEachPair(rel, fd, part, violating_only, [&](RowId a, RowId b) {
    out.emplace_back(a, b);
    return limit == 0 || out.size() < limit;
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<RowPair> ViolatingPairs(const Relation& rel, const FD& fd,
                                    size_t limit) {
  return CollectPairs(rel, fd, Partition::Build(rel, fd.lhs),
                      /*violating_only=*/true, limit);
}

std::vector<RowPair> AgreeingPairs(const Relation& rel, const FD& fd,
                                   size_t limit) {
  return CollectPairs(rel, fd, Partition::Build(rel, fd.lhs),
                      /*violating_only=*/false, limit);
}

std::vector<RowPair> ViolatingPairs(EvalCache& cache, const FD& fd,
                                    size_t limit) {
  return CollectPairs(cache.relation(), fd, *cache.Get(fd.lhs),
                      /*violating_only=*/true, limit);
}

std::vector<RowPair> AgreeingPairs(EvalCache& cache, const FD& fd,
                                   size_t limit) {
  return CollectPairs(cache.relation(), fd, *cache.Get(fd.lhs),
                      /*violating_only=*/false, limit);
}

std::vector<Cell> ViolationCells(const FD& fd, const RowPair& pair) {
  std::vector<Cell> out;
  for (RowId r : {pair.first, pair.second}) {
    for (int col : fd.lhs.ToIndices()) out.push_back(Cell{r, col});
    out.push_back(Cell{r, fd.rhs});
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

std::vector<Cell> CollectViolationCells(
    const Relation& rel, const std::vector<FD>& fds, EvalCache* cache) {
  std::unordered_set<Cell, CellHash> seen;
  for (const FD& fd : fds) {
    const std::vector<RowPair> pairs =
        cache ? ViolatingPairs(*cache, fd) : ViolatingPairs(rel, fd);
    for (const RowPair& pair : pairs) {
      for (const Cell& c : ViolationCells(fd, pair)) seen.insert(c);
    }
  }
  std::vector<Cell> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<Cell> AllViolationCells(const Relation& rel,
                                    const std::vector<FD>& fds) {
  return CollectViolationCells(rel, fds, nullptr);
}

std::vector<Cell> AllViolationCells(EvalCache& cache,
                                    const std::vector<FD>& fds) {
  return CollectViolationCells(cache.relation(), fds, &cache);
}

}  // namespace et
