#include "belief/priors.h"

#include <algorithm>

#include "fd/eval_cache.h"
#include "fd/g1.h"

namespace et {
namespace {

// Clamps a mean into the open interval required by Beta parameters.
double ClampMean(double mean) {
  return std::clamp(mean, 1e-3, 1.0 - 1e-3);
}

// Beta with a given mean and total pseudo-count.
Beta BetaFromMeanStrength(double mean, double strength) {
  mean = ClampMean(mean);
  return Beta(mean * strength, (1.0 - mean) * strength);
}

Status CheckSpace(const std::shared_ptr<const HypothesisSpace>& space) {
  if (!space || space->size() == 0) {
    return Status::InvalidArgument("hypothesis space is null or empty");
  }
  return Status::OK();
}

}  // namespace

Result<BeliefModel> UniformPrior(
    std::shared_ptr<const HypothesisSpace> space, double d,
    double strength) {
  ET_RETURN_NOT_OK(CheckSpace(space));
  if (d <= 0.0 || d >= 1.0) {
    return Status::InvalidArgument("Uniform-d prior needs d in (0,1)");
  }
  if (strength <= 0.0) {
    return Status::InvalidArgument("prior strength must be positive");
  }
  std::vector<Beta> betas(space->size(), BetaFromMeanStrength(d, strength));
  return BeliefModel(std::move(space), std::move(betas));
}

Result<BeliefModel> RandomPrior(
    std::shared_ptr<const HypothesisSpace> space, Rng& rng,
    double strength) {
  ET_RETURN_NOT_OK(CheckSpace(space));
  if (strength <= 0.0) {
    return Status::InvalidArgument("prior strength must be positive");
  }
  std::vector<Beta> betas;
  betas.reserve(space->size());
  for (size_t i = 0; i < space->size(); ++i) {
    betas.push_back(BetaFromMeanStrength(rng.NextDouble(), strength));
  }
  return BeliefModel(std::move(space), std::move(betas));
}

Result<BeliefModel> DataEstimatePrior(
    std::shared_ptr<const HypothesisSpace> space, const Relation& rel,
    double strength, EvalCache* cache) {
  ET_RETURN_NOT_OK(CheckSpace(space));
  if (rel.schema() != space->schema()) {
    return Status::InvalidArgument(
        "relation schema does not match hypothesis space");
  }
  if (strength <= 0.0) {
    return Status::InvalidArgument("prior strength must be positive");
  }
  std::vector<Beta> betas;
  betas.reserve(space->size());
  for (const FD& fd : space->fds()) {
    const double confidence = cache != nullptr
                                  ? cache->PairwiseConfidence(fd)
                                  : PairwiseConfidence(rel, fd);
    betas.push_back(BetaFromMeanStrength(confidence, strength));
  }
  return BeliefModel(std::move(space), std::move(betas));
}

Result<BeliefModel> UserPrior(
    std::shared_ptr<const HypothesisSpace> space, const FD& stated,
    const UserPriorConfig& config) {
  ET_RETURN_NOT_OK(CheckSpace(space));
  ET_ASSIGN_OR_RETURN(size_t stated_idx, space->IndexOf(stated));
  std::vector<Beta> betas;
  betas.reserve(space->size());
  for (size_t i = 0; i < space->size(); ++i) {
    double mean = config.other_mean;
    if (i == stated_idx) {
      mean = config.stated_mean;
    } else if (config.boost_related &&
               space->fd(i).IsRelatedTo(stated)) {
      mean = config.related_mean;
    }
    ET_ASSIGN_OR_RETURN(Beta b,
                        Beta::FromMeanStd(ClampMean(mean), config.stddev));
    betas.push_back(b);
  }
  return BeliefModel(std::move(space), std::move(betas));
}

}  // namespace et
