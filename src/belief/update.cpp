#include "belief/update.h"

#include "fd/g1.h"

namespace et {

void UpdateFromObservation(BeliefModel* belief, const Relation& rel,
                           const std::vector<RowPair>& pairs,
                           double weight) {
  if (weight <= 0.0) return;
  const HypothesisSpace& space = belief->space();
  for (size_t i = 0; i < space.size(); ++i) {
    const FD& fd = space.fd(i);
    for (const RowPair& p : pairs) {
      switch (CheckPair(rel, fd, p.first, p.second)) {
        case PairCompliance::kSatisfies:
          belief->beta(i).ObserveSuccess(weight);
          break;
        case PairCompliance::kViolates:
          belief->beta(i).ObserveFailure(weight);
          break;
        case PairCompliance::kInapplicable:
          break;
      }
    }
  }
}

namespace {

/// Shared core of apply/retract: walks (FD, labeled pair) combinations
/// and calls ObserveSuccess/ObserveFailure with sign * weight.
/// Retraction clamps so Beta parameters stay positive.
void ApplyLabelEvidence(BeliefModel* belief, const Relation& rel,
                        const std::vector<LabeledPair>& labels,
                        const UpdateWeights& weights, double sign) {
  constexpr double kMinParam = 1e-3;
  const HypothesisSpace& space = belief->space();
  auto success = [&](size_t i, double w) {
    if (w <= 0.0) return;
    Beta& b = belief->beta(i);
    const double delta = sign * w;
    if (b.alpha() + delta < kMinParam) {
      b = Beta(kMinParam, b.beta());
    } else {
      b.ObserveSuccess(delta);
    }
  };
  auto failure = [&](size_t i, double w) {
    if (w <= 0.0) return;
    Beta& b = belief->beta(i);
    const double delta = sign * w;
    if (b.beta() + delta < kMinParam) {
      b = Beta(b.alpha(), kMinParam);
    } else {
      b.ObserveFailure(delta);
    }
  };
  for (size_t i = 0; i < space.size(); ++i) {
    const FD& fd = space.fd(i);
    for (const LabeledPair& lp : labels) {
      const PairCompliance c =
          CheckPair(rel, fd, lp.pair.first, lp.pair.second);
      if (c == PairCompliance::kInapplicable) continue;
      const bool violates = (c == PairCompliance::kViolates);
      if (!lp.AnyDirty()) {
        if (violates) {
          failure(i, weights.clean_violates);
        } else {
          success(i, weights.clean_satisfies);
        }
      } else {
        if (violates) {
          success(i, weights.dirty_violates);
        } else {
          success(i, weights.dirty_satisfies);
        }
      }
    }
  }
}

}  // namespace

void UpdateFromLabels(BeliefModel* belief, const Relation& rel,
                      const std::vector<LabeledPair>& labels,
                      const UpdateWeights& weights) {
  ApplyLabelEvidence(belief, rel, labels, weights, +1.0);
}

void RemoveLabelEvidence(BeliefModel* belief, const Relation& rel,
                         const std::vector<LabeledPair>& labels,
                         const UpdateWeights& weights) {
  ApplyLabelEvidence(belief, rel, labels, weights, -1.0);
}

}  // namespace et
