#include "belief/belief_model.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/math.h"

namespace et {

BeliefModel::BeliefModel(std::shared_ptr<const HypothesisSpace> space)
    : space_(std::move(space)) {
  ET_CHECK(space_ != nullptr);
  betas_.assign(space_->size(), Beta());
  fd_epochs_.assign(betas_.size(), 0);
}

BeliefModel::BeliefModel(std::shared_ptr<const HypothesisSpace> space,
                         std::vector<Beta> betas)
    : space_(std::move(space)), betas_(std::move(betas)) {
  ET_CHECK(space_ != nullptr);
  ET_CHECK(betas_.size() == space_->size());
  fd_epochs_.assign(betas_.size(), 0);
}

std::vector<double> BeliefModel::Confidences() const {
  std::vector<double> out(betas_.size());
  for (size_t i = 0; i < betas_.size(); ++i) out[i] = betas_[i].Mean();
  return out;
}

std::vector<size_t> BeliefModel::TopK(size_t k) const {
  std::vector<size_t> idx(betas_.size());
  std::iota(idx.begin(), idx.end(), 0);
  k = std::min(k, idx.size());
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return betas_[a].Mean() > betas_[b].Mean();
  });
  idx.resize(k);
  return idx;
}

Result<double> BeliefModel::MAE(const BeliefModel& other) const {
  if (space_.get() != other.space_.get() &&
      !(space_ && other.space_ && space_->fds() == other.space_->fds())) {
    return Status::InvalidArgument(
        "MAE requires beliefs over the same hypothesis space");
  }
  return MeanAbsoluteError(Confidences(), other.Confidences());
}

}  // namespace et
