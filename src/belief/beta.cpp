#include "belief/beta.h"

namespace et {

Result<Beta> Beta::FromMeanStd(double mean, double stddev) {
  if (mean <= 0.0 || mean >= 1.0) {
    return Status::InvalidArgument("Beta mean must be in (0,1)");
  }
  const double var = stddev * stddev;
  const double max_var = mean * (1.0 - mean);
  if (var <= 0.0 || var >= max_var) {
    return Status::InvalidArgument(
        "Beta variance must be in (0, mean*(1-mean))");
  }
  const double nu = max_var / var - 1.0;
  return Beta(mean * nu, (1.0 - mean) * nu);
}

void Beta::Decay(double factor, double min_strength) {
  if (factor >= 1.0) return;
  const double strength = alpha_ + beta_;
  if (strength <= min_strength) return;
  double f = factor;
  if (strength * f < min_strength) f = min_strength / strength;
  alpha_ *= f;
  beta_ *= f;
}

}  // namespace et
