#include "belief/serialize.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace et {
namespace {

constexpr char kMagic[] = "et-belief-v1";

Result<std::vector<std::string>> ReadLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  if (lines.empty()) return Status::InvalidArgument("empty belief file");
  return lines;
}

}  // namespace

std::string SerializeBeliefModel(const BeliefModel& belief) {
  const HypothesisSpace& space = belief.space();
  const Schema& schema = space.schema();
  std::string out = std::string(kMagic) + "\n";
  out += "attributes " + std::to_string(schema.num_attributes()) + "\n";
  for (const std::string& name : schema.names()) out += name + "\n";
  out += "fds " + std::to_string(space.size()) + "\n";
  for (size_t i = 0; i < space.size(); ++i) {
    const FD& fd = space.fd(i);
    out += StrFormat("%u %d %.17g %.17g\n", fd.lhs.mask(), fd.rhs,
                     belief.beta(i).alpha(), belief.beta(i).beta());
  }
  return out;
}

Result<BeliefModel> DeserializeBeliefModel(const std::string& text) {
  ET_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(text));
  size_t pos = 0;
  auto next = [&]() -> Result<std::string> {
    if (pos >= lines.size()) {
      return Status::InvalidArgument("truncated belief file");
    }
    return lines[pos++];
  };

  ET_ASSIGN_OR_RETURN(std::string magic, next());
  if (magic != kMagic) {
    return Status::InvalidArgument("bad magic: " + magic);
  }
  ET_ASSIGN_OR_RETURN(std::string attr_header, next());
  const auto attr_parts = Split(attr_header, ' ');
  if (attr_parts.size() != 2 || attr_parts[0] != "attributes") {
    return Status::InvalidArgument("bad attributes header");
  }
  ET_ASSIGN_OR_RETURN(long long n_attrs, ParseInt(attr_parts[1]));
  if (n_attrs <= 0 || n_attrs > kMaxAttributes) {
    return Status::InvalidArgument("bad attribute count");
  }
  std::vector<std::string> names;
  for (long long i = 0; i < n_attrs; ++i) {
    ET_ASSIGN_OR_RETURN(std::string name, next());
    names.push_back(name);
  }
  ET_ASSIGN_OR_RETURN(Schema schema, Schema::Make(std::move(names)));

  ET_ASSIGN_OR_RETURN(std::string fd_header, next());
  const auto fd_parts = Split(fd_header, ' ');
  if (fd_parts.size() != 2 || fd_parts[0] != "fds") {
    return Status::InvalidArgument("bad fds header");
  }
  ET_ASSIGN_OR_RETURN(long long n_fds, ParseInt(fd_parts[1]));
  if (n_fds <= 0) {
    return Status::InvalidArgument("belief needs at least one FD");
  }
  std::vector<FD> fds;
  std::vector<Beta> betas;
  for (long long i = 0; i < n_fds; ++i) {
    ET_ASSIGN_OR_RETURN(std::string line, next());
    const auto parts = Split(line, ' ');
    if (parts.size() != 4) {
      return Status::InvalidArgument("bad FD line: " + line);
    }
    ET_ASSIGN_OR_RETURN(long long mask, ParseInt(parts[0]));
    ET_ASSIGN_OR_RETURN(long long rhs, ParseInt(parts[1]));
    ET_ASSIGN_OR_RETURN(double alpha, ParseDouble(parts[2]));
    ET_ASSIGN_OR_RETURN(double beta, ParseDouble(parts[3]));
    if (alpha <= 0.0 || beta <= 0.0) {
      return Status::InvalidArgument("Beta parameters must be positive");
    }
    const FD fd(AttrSet(static_cast<uint32_t>(mask)),
                static_cast<int>(rhs));
    if (!fd.IsValid(schema)) {
      return Status::InvalidArgument("invalid FD in belief file: " +
                                     line);
    }
    fds.push_back(fd);
    betas.emplace_back(alpha, beta);
  }
  ET_ASSIGN_OR_RETURN(HypothesisSpace space,
                      HypothesisSpace::Make(schema, std::move(fds)));
  return BeliefModel(
      std::make_shared<const HypothesisSpace>(std::move(space)),
      std::move(betas));
}

Status SaveBeliefModel(const BeliefModel& belief,
                       const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  out << SerializeBeliefModel(belief);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<BeliefModel> LoadBeliefModel(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return DeserializeBeliefModel(ss.str());
}

}  // namespace et
