// Fictitious-play / Bayesian belief updates (the paper treats the two
// interchangeably given a Beta prior).
//
// Two update channels exist, matching the two agents' prediction models:
//
//  * Observation (trainer's P^T): the trainer sees raw samples X_t and
//    moves its belief by how much they accord with each FD — an
//    LHS-agreeing pair that satisfies f is a success for f, a violating
//    pair a failure. This is what makes the trainer non-stationary: its
//    labeling strategy drifts as evidence accumulates.
//
//  * Labels (learner's P^L): the learner sees the trainer's labeled
//    pairs Y_t. A clean/clean pair that satisfies f supports f; a
//    clean/clean pair violating f contradicts f; a violating pair with a
//    dirty tuple is explained by the error and weakly supports f; a
//    satisfying pair with a dirty tuple is uninformative. (The paper
//    leaves the exact likelihood implicit; DESIGN.md §2 documents this
//    instantiation.)

#ifndef ET_BELIEF_UPDATE_H_
#define ET_BELIEF_UPDATE_H_

#include <vector>

#include "belief/belief_model.h"
#include "data/relation.h"
#include "fd/violations.h"

namespace et {

/// A tuple pair with the trainer's per-tuple dirty labels.
struct LabeledPair {
  RowPair pair;
  bool first_dirty = false;
  bool second_dirty = false;

  bool AnyDirty() const { return first_dirty || second_dirty; }
};

/// Evidence weights of the update rules. Defaults follow DESIGN.md §2:
/// the learner's information about the *trainer's belief* is carried by
/// the trainer's dirt attributions on violating pairs — a violating pair
/// the trainer marks dirty means the trainer holds f (the violation is
/// an error), one it leaves clean means the trainer accepts the
/// exception (does not hold f). Satisfying pairs are only weakly
/// informative: the trainer labels them clean under almost any belief.
struct UpdateWeights {
  /// Clean/clean satisfying pair -> ObserveSuccess(clean_satisfies).
  double clean_satisfies = 0.2;
  /// Clean/clean violating pair -> ObserveFailure(clean_violates).
  double clean_violates = 1.0;
  /// Dirty pair violating f -> ObserveSuccess(dirty_violates)
  /// (violation explained by the error).
  double dirty_violates = 1.0;
  /// Dirty pair satisfying f: uninformative by default.
  double dirty_satisfies = 0.0;
};

/// Trainer-side update: raw observation of presented pairs.
/// LHS-inapplicable pairs leave the FD untouched. `weight` scales the
/// evidence (a slow human learner uses weight < 1).
void UpdateFromObservation(BeliefModel* belief, const Relation& rel,
                           const std::vector<RowPair>& pairs,
                           double weight = 1.0);

/// Learner-side update from the trainer's labeled pairs.
void UpdateFromLabels(BeliefModel* belief, const Relation& rel,
                      const std::vector<LabeledPair>& labels,
                      const UpdateWeights& weights = {});

/// Retracts evidence previously applied by UpdateFromLabels with the
/// same labels and weights (pseudo-counts are subtracted, clamped so
/// Beta parameters stay positive). Enables label *replacement*: when a
/// trainer revises an earlier label, the stale opinion is withdrawn
/// instead of being averaged against forever.
void RemoveLabelEvidence(BeliefModel* belief, const Relation& rel,
                         const std::vector<LabeledPair>& labels,
                         const UpdateWeights& weights = {});

}  // namespace et

#endif  // ET_BELIEF_UPDATE_H_
