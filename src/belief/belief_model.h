// BeliefModel: an agent's belief theta — one Beta distribution per FD of
// a shared hypothesis space. Both the trainer and the learner hold one;
// the game's MAE metric compares their mean vectors.

#ifndef ET_BELIEF_BELIEF_MODEL_H_
#define ET_BELIEF_BELIEF_MODEL_H_

#include <memory>
#include <vector>

#include "belief/beta.h"
#include "common/result.h"
#include "fd/hypothesis_space.h"

namespace et {

/// A belief over the FDs of a hypothesis space. Copyable (agents fork
/// and compare beliefs); the hypothesis space is shared immutable state.
class BeliefModel {
 public:
  BeliefModel() = default;

  /// All-FDs-uniform Beta(1,1) belief.
  explicit BeliefModel(std::shared_ptr<const HypothesisSpace> space);

  BeliefModel(std::shared_ptr<const HypothesisSpace> space,
              std::vector<Beta> betas);

  const HypothesisSpace& space() const { return *space_; }
  const std::shared_ptr<const HypothesisSpace>& space_ptr() const {
    return space_;
  }
  size_t size() const { return betas_.size(); }

  const Beta& beta(size_t idx) const { return betas_.at(idx); }
  /// Mutable access marks FD `idx` dirty: the belief's epoch advances
  /// and the FD records it, so incremental scorers (core/score_cache.h)
  /// can tell which Betas changed since they last synced. Obtaining the
  /// reference counts as a mutation even if the caller never writes.
  Beta& beta(size_t idx) {
    fd_epochs_.at(idx) = ++epoch_;
    return betas_[idx];
  }

  /// Monotone counter advanced by every mutable beta() access.
  uint64_t epoch() const { return epoch_; }

  /// Epoch of FD idx's last mutation (0 = never mutated).
  uint64_t fd_epoch(size_t idx) const { return fd_epochs_.at(idx); }

  /// Mean confidence of FD idx.
  double Confidence(size_t idx) const { return betas_.at(idx).Mean(); }

  /// Vector of all mean confidences, in space order.
  std::vector<double> Confidences() const;

  /// Indices of the k highest-confidence FDs, ties broken by index
  /// (deterministic). k is clamped to size().
  std::vector<size_t> TopK(size_t k) const;

  /// Index of the single highest-confidence FD.
  size_t Top1() const { return TopK(1).front(); }

  /// Mean absolute difference of confidences against another belief
  /// over the same space (the paper's convergence metric).
  Result<double> MAE(const BeliefModel& other) const;

 private:
  std::shared_ptr<const HypothesisSpace> space_;
  std::vector<Beta> betas_;
  /// Dirty-FD tracking for incremental policy scoring. Copies carry
  /// the counters along, which keeps forked beliefs conservatively
  /// "all changed" relative to a scorer synced against the original.
  uint64_t epoch_ = 0;
  std::vector<uint64_t> fd_epochs_;
};

}  // namespace et

#endif  // ET_BELIEF_BELIEF_MODEL_H_
