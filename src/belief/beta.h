// Beta distribution over an FD's confidence — the building block of
// agent beliefs (App. A.2 configures priors via Beta mean/stddev).

#ifndef ET_BELIEF_BETA_H_
#define ET_BELIEF_BETA_H_

#include "common/result.h"
#include "common/rng.h"

namespace et {

/// Beta(alpha, beta) with conjugate Bernoulli updating.
class Beta {
 public:
  /// Uniform prior Beta(1, 1).
  Beta() : alpha_(1.0), beta_(1.0) {}
  Beta(double alpha, double beta) : alpha_(alpha), beta_(beta) {}

  /// Solves alpha/beta from a target mean and standard deviation via
  ///   mu = a/(a+b),  sigma^2 = ab / ((a+b)^2 (a+b+1))
  /// (the equations the paper quotes). Requires 0 < mean < 1 and
  /// 0 < sigma^2 < mean(1-mean).
  static Result<Beta> FromMeanStd(double mean, double stddev);

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  double Mean() const { return alpha_ / (alpha_ + beta_); }
  double Variance() const {
    const double s = alpha_ + beta_;
    return alpha_ * beta_ / (s * s * (s + 1.0));
  }
  /// Pseudo-observation count; grows with evidence (belief stiffness).
  double Strength() const { return alpha_ + beta_; }

  /// Conjugate updates; `weight` is the evidence multiplicity.
  void ObserveSuccess(double weight = 1.0) { alpha_ += weight; }
  void ObserveFailure(double weight = 1.0) { beta_ += weight; }

  /// Exponential forgetting: scales both pseudo-counts by `factor`
  /// (mean preserved, variance widened), never shrinking the total
  /// strength below `min_strength`. Models evidence staleness when the
  /// other agent is non-stationary: old labels should count less than
  /// new ones.
  void Decay(double factor, double min_strength = 2.0);

  /// Draws a confidence sample.
  double Sample(Rng& rng) const { return rng.NextBeta(alpha_, beta_); }

 private:
  double alpha_;
  double beta_;
};

}  // namespace et

#endif  // ET_BELIEF_BETA_H_
