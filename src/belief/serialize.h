// Belief-model serialization: save a training session's learned model
// and resume or ship it. Plain-text, versioned, self-contained (the
// hypothesis space travels with the Betas).
//
// Format (line-oriented):
//   et-belief-v1
//   attributes <n>
//   <attribute name>            x n   (one per line, verbatim)
//   fds <m>
//   <lhs-mask> <rhs> <alpha> <beta>   x m

#ifndef ET_BELIEF_SERIALIZE_H_
#define ET_BELIEF_SERIALIZE_H_

#include <string>

#include "belief/belief_model.h"
#include "common/result.h"

namespace et {

/// Serializes the belief (hypothesis space + Beta parameters) to text.
std::string SerializeBeliefModel(const BeliefModel& belief);

/// Parses a serialized belief. Fails on version/shape mismatches,
/// malformed numbers, or invalid FDs.
Result<BeliefModel> DeserializeBeliefModel(const std::string& text);

/// File convenience wrappers.
Status SaveBeliefModel(const BeliefModel& belief,
                       const std::string& path);
Result<BeliefModel> LoadBeliefModel(const std::string& path);

}  // namespace et

#endif  // ET_BELIEF_SERIALIZE_H_
