// Prior belief builders (App. A.2 and C.1).
//
// Empirical study priors: Uniform-d (every FD's confidence initialized
// to d), Random (each confidence sampled from [0,1]), Data-estimate
// (confidence from the unlabeled data, treating it as clean). User-study
// prior: the user's stated FD gets mean eps = 0.85, its subset/superset
// relatives 0.8, everything else 0.15; all stddevs 0.05.

#ifndef ET_BELIEF_PRIORS_H_
#define ET_BELIEF_PRIORS_H_

#include <memory>

#include "belief/belief_model.h"
#include "common/rng.h"
#include "data/relation.h"

namespace et {

class EvalCache;

/// Configuration constants from App. A.2.
struct UserPriorConfig {
  double stated_mean = 0.85;    // epsilon
  double related_mean = 0.80;   // subset/superset FDs
  double other_mean = 0.15;     // everything else
  double stddev = 0.05;
  /// When false, related FDs get other_mean (the paper's first prior
  /// configuration); when true, the second configuration above.
  bool boost_related = true;
};

/// Every FD's prior confidence is d; `strength` is the Beta
/// pseudo-count alpha+beta controlling how fast evidence moves it.
/// d must be in (0,1), strength > 0.
Result<BeliefModel> UniformPrior(
    std::shared_ptr<const HypothesisSpace> space, double d,
    double strength = 10.0);

/// Each FD's prior confidence is drawn uniformly from (0,1).
Result<BeliefModel> RandomPrior(
    std::shared_ptr<const HypothesisSpace> space, Rng& rng,
    double strength = 10.0);

/// Each FD's prior confidence is its PairwiseConfidence on the given
/// (unlabeled, possibly dirty) relation — "the learner computes its
/// prior by treating the unlabeled dataset to be completely clean".
/// When `cache` is non-null it must wrap `rel`; the space-wide
/// confidence scan then reuses (and populates) its shared partitions.
Result<BeliefModel> DataEstimatePrior(
    std::shared_ptr<const HypothesisSpace> space, const Relation& rel,
    double strength = 10.0, EvalCache* cache = nullptr);

/// The user-study prior: `stated` is the FD the user declared most
/// accurate (must be inside the space).
Result<BeliefModel> UserPrior(
    std::shared_ptr<const HypothesisSpace> space, const FD& stated,
    const UserPriorConfig& config = {});

}  // namespace et

#endif  // ET_BELIEF_PRIORS_H_
