#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <new>
#include <utility>

#include "common/logging.h"
#include "common/task_context.h"

namespace et {
namespace {

/// Nonzero while this thread is executing a ParallelFor chunk; nested
/// loops detect it and run inline instead of re-entering the pool.
thread_local int g_parallel_depth = 0;

/// True on threads owned by a ThreadPool. A ParallelFor on such a
/// thread must not block on queued chunks: every other worker may be
/// occupied by tasks doing the same (the serving layer runs whole
/// request handlers on the global pool), and a pool smaller than
/// Parallelism() — one hardware thread with --threads=4 — would
/// deadlock on the very first loop. Inline execution is always safe:
/// chunk boundaries are a pure function of (n, Parallelism()), so
/// per-index output is bit-identical either way.
thread_local bool g_pool_worker = false;

std::atomic<uint64_t> g_uncaught_task_exceptions{0};

std::mutex& ChunkHookMutex() {
  static std::mutex mu;
  return mu;
}

/// Shared_ptr so a chunk mid-flight keeps the hook it started with even
/// if another thread swaps it.
std::shared_ptr<const std::function<void()>>& ChunkHookSlot() {
  static std::shared_ptr<const std::function<void()>> hook;
  return hook;
}

std::shared_ptr<const std::function<void()>> CurrentChunkHook() {
  std::lock_guard<std::mutex> lock(ChunkHookMutex());
  return ChunkHookSlot();
}

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int DefaultParallelism() {
  if (const char* env = std::getenv("ET_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return HardwareThreads();
}

std::atomic<int>& ParallelismOverride() {
  static std::atomic<int> value{0};  // 0 = use the default
  return value;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

size_t ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

void ThreadPool::EnsureWorkers(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) return;
  while (workers_.size() < n) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  g_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Contain task exceptions: a throw escaping here would terminate
    // the process (std::thread), taking every other worker's queued
    // work with it — including during the shutdown drain.
    try {
      task();
    } catch (const std::exception& e) {
      g_uncaught_task_exceptions.fetch_add(1, std::memory_order_relaxed);
      ET_LOG(Error) << "thread pool: task threw: " << e.what();
    } catch (...) {
      g_uncaught_task_exceptions.fetch_add(1, std::memory_order_relaxed);
      ET_LOG(Error) << "thread pool: task threw a non-std exception";
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool =
      new ThreadPool(static_cast<size_t>(HardwareThreads()));
  return *pool;
}

int Parallelism() {
  const int n = ParallelismOverride().load(std::memory_order_relaxed);
  if (n > 0) return n;
  static const int def = DefaultParallelism();
  return def;
}

void SetParallelism(int n) {
  ParallelismOverride().store(n > 0 ? n : 0, std::memory_order_relaxed);
}

void ParallelFor(size_t n,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t threads = static_cast<size_t>(Parallelism());
  if (threads <= 1 || n < 2 || g_parallel_depth > 0 || g_pool_worker) {
    ++g_parallel_depth;
    try {
      fn(0, n);
    } catch (...) {
      --g_parallel_depth;
      throw;
    }
    --g_parallel_depth;
    return;
  }
  const size_t chunks = threads < n ? threads : n;

  struct SharedState {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending;
    std::vector<std::exception_ptr> errors;
  };
  auto state = std::make_shared<SharedState>();
  state->pending = chunks - 1;
  state->errors.assign(chunks, nullptr);

  // Chunks run on pool workers but do this request's work: carry the
  // caller's request id into each so trace spans emitted inside stay
  // attributable to the originating wire request.
  const uint64_t request_id = CurrentRequestId();
  auto run_chunk = [&fn, request_id](SharedState& s, size_t i,
                                     size_t begin, size_t end) {
    RequestIdScope request_scope(request_id);
    ++g_parallel_depth;
    try {
      if (auto hook = CurrentChunkHook()) (*hook)();
      fn(begin, end);
    } catch (...) {
      s.errors[i] = std::current_exception();
    }
    --g_parallel_depth;
  };

  for (size_t i = 1; i < chunks; ++i) {
    const size_t begin = i * n / chunks;
    const size_t end = (i + 1) * n / chunks;
    ThreadPool::Global().Submit([state, i, begin, end, run_chunk] {
      run_chunk(*state, i, begin, end);
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->pending == 0) state->cv.notify_one();
    });
  }
  run_chunk(*state, 0, 0, n / chunks);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->pending == 0; });
  }
  for (const std::exception_ptr& e : state->errors) {
    if (e) std::rethrow_exception(e);
  }
}

Status TryParallelFor(size_t n,
                      const std::function<void(size_t, size_t)>& fn) {
  try {
    ParallelFor(n, fn);
    return Status::OK();
  } catch (const std::bad_alloc&) {
    return Status::Internal("parallel chunk: out of memory");
  } catch (const std::exception& e) {
    return Status::Internal(std::string("parallel chunk: ") + e.what());
  } catch (...) {
    return Status::Internal("parallel chunk: non-std exception");
  }
}

void SetParallelChunkHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(ChunkHookMutex());
  if (hook == nullptr) {
    ChunkHookSlot() = nullptr;
  } else {
    ChunkHookSlot() =
        std::make_shared<const std::function<void()>>(std::move(hook));
  }
}

uint64_t PoolUncaughtTaskExceptions() {
  return g_uncaught_task_exceptions.load(std::memory_order_relaxed);
}

}  // namespace et
