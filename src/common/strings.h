// String helpers used by the CSV reader, reporters, and config parsing.

#ifndef ET_COMMON_STRINGS_H_
#define ET_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace et {

/// Splits on a single character; keeps empty fields. "a,,b" -> {a,"",b}.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator string.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Case-sensitive prefix/suffix tests.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// Strict numeric parsing: the whole trimmed string must parse.
Result<long long> ParseInt(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace et

#endif  // ET_COMMON_STRINGS_H_
