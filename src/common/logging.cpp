#include "common/logging.h"

#include <atomic>

namespace et {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  ss_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  ss_ << "\n";
  std::cerr << ss_.str();
  (void)level_;
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  ss_ << "[FATAL " << file << ":" << line << "] Check failed: " << expr
      << " ";
}

FatalMessage::~FatalMessage() {
  ss_ << "\n";
  std::cerr << ss_.str();
  std::abort();
}

}  // namespace internal
}  // namespace et
