#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace et {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

// "HH:MM:SS.mmm" local wall-clock, for correlating log lines with trace
// spans and external tooling.
std::string FormatTimestamp() {
  using std::chrono::duration_cast;
  using std::chrono::milliseconds;
  using std::chrono::system_clock;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const int ms = static_cast<int>(
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000);
  std::tm tm_buf{};
  localtime_r(&secs, &tm_buf);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, ms);
  return buf;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local const uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  ss_ << "[" << LevelName(level) << " " << FormatTimestamp() << " T"
      << CurrentThreadId() << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  ss_ << "\n";
  std::cerr << ss_.str();
  (void)level_;
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  ss_ << "[FATAL " << FormatTimestamp() << " T" << CurrentThreadId() << " "
      << file << ":" << line << "] Check failed: " << expr << " ";
}

FatalMessage::~FatalMessage() {
  ss_ << "\n";
  std::cerr << ss_.str();
  std::abort();
}

}  // namespace internal
}  // namespace et
