#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <memory>
#include <mutex>

#include "common/task_context.h"

namespace et {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

// "HH:MM:SS.mmm" local wall-clock, for correlating log lines with trace
// spans and external tooling.
std::string FormatTimestamp() {
  using std::chrono::duration_cast;
  using std::chrono::milliseconds;
  using std::chrono::system_clock;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const int ms = static_cast<int>(
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000);
  std::tm tm_buf{};
  localtime_r(&secs, &tm_buf);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, ms);
  return buf;
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

// Shared_ptr so a message mid-emission keeps the sink it started with
// even if another thread swaps it.
std::shared_ptr<const LogSink>& SinkSlot() {
  static std::shared_ptr<const LogSink> sink;
  return sink;
}

std::shared_ptr<const LogSink> CurrentSink() {
  std::lock_guard<std::mutex> lock(SinkMutex());
  return SinkSlot();
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local const uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (sink == nullptr) {
    SinkSlot() = nullptr;
  } else {
    SinkSlot() = std::make_shared<const LogSink>(std::move(sink));
  }
}

std::string FormatLogRecord(const LogRecord& record) {
  std::ostringstream out;
  out << "[" << LogLevelName(record.level) << " " << record.timestamp
      << " T" << record.thread_id << " " << record.file << ":"
      << record.line << "] " << record.message << "\n";
  return out.str();
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  LogRecord record;
  record.level = level_;
  record.file = file_;
  record.line = line_;
  record.thread_id = CurrentThreadId();
  record.request_id = CurrentRequestId();
  record.timestamp = FormatTimestamp();
  record.message = ss_.str();
  if (auto sink = CurrentSink()) {
    (*sink)(record);
  } else {
    std::cerr << FormatLogRecord(record);
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* expr) {
  ss_ << "[FATAL " << FormatTimestamp() << " T" << CurrentThreadId() << " "
      << file << ":" << line << "] Check failed: " << expr << " ";
}

FatalMessage::~FatalMessage() {
  // The process is about to abort: bypass any installed sink and write
  // straight to stderr — a sink that allocates or locks could swallow
  // the one line that explains the death.
  ss_ << "\n";
  std::cerr << ss_.str();
  std::abort();
}

}  // namespace internal
}  // namespace et
