#include "common/status.h"

namespace et {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace et
