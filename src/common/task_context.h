// Request-scoped task context: a thread-local request id that tags
// everything a thread does on behalf of one wire request — trace spans,
// log lines, slow-request events — so a live trace of the server can be
// grouped by request across the IO thread and pool workers.
//
// The id is plain thread-local state, not a full context object: the
// only cross-cutting datum the system needs today is "which request is
// this work for", and a single u64 keeps propagation free of
// allocation. ParallelFor captures the caller's id and installs it in
// every chunk (thread_pool.cpp), so spans emitted inside parallel
// scoring inherit the request that triggered them; explicitly-submitted
// pool tasks install it themselves (serve/server.cpp).
//
// Id 0 means "no request" (batch tools, tests, background threads).

#ifndef ET_COMMON_TASK_CONTEXT_H_
#define ET_COMMON_TASK_CONTEXT_H_

#include <cstdint>

namespace et {
namespace internal {

inline thread_local uint64_t tls_request_id = 0;

}  // namespace internal

/// The request id attached to the calling thread (0 = none).
inline uint64_t CurrentRequestId() { return internal::tls_request_id; }

/// Overwrites the calling thread's request id. Prefer RequestIdScope.
inline void SetCurrentRequestId(uint64_t id) {
  internal::tls_request_id = id;
}

/// Installs `id` as the calling thread's request id for the scope's
/// lifetime, restoring the previous id on exit (so nested scopes — a
/// pool worker reused across requests, a chunk inside a request —
/// unwind correctly).
class RequestIdScope {
 public:
  explicit RequestIdScope(uint64_t id) : saved_(CurrentRequestId()) {
    SetCurrentRequestId(id);
  }
  ~RequestIdScope() { SetCurrentRequestId(saved_); }

  RequestIdScope(const RequestIdScope&) = delete;
  RequestIdScope& operator=(const RequestIdScope&) = delete;

 private:
  uint64_t saved_;
};

}  // namespace et

#endif  // ET_COMMON_TASK_CONTEXT_H_
