// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (policies, error generation,
// simulated annotators) take an explicit Rng so experiments are
// bit-reproducible across runs and platforms. The engine is
// xoshiro256** seeded via SplitMix64, both implemented here so results
// do not depend on a standard library's unspecified distributions.

#ifndef ET_COMMON_RNG_H_
#define ET_COMMON_RNG_H_

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace et {

/// xoshiro256** generator with explicit, portable distributions.
class Rng {
 public:
  /// Seeds the four-word state from `seed` via SplitMix64; any seed
  /// (including 0) yields a valid, well-mixed state.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit word.
  uint64_t NextUint64();

  /// Uniform in [0, n). n must be > 0. Unbiased (rejection sampling).
  uint64_t NextUint64(uint64_t n);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [lo, hi] inclusive.
  int NextInt(int lo, int hi) {
    assert(hi >= lo);
    return lo + static_cast<int>(
                    NextUint64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box–Muller (no cached spare: keeps state small
  /// and draws independent of call interleaving).
  double NextGaussian();

  /// Gamma(shape, 1) via Marsaglia–Tsang; shape > 0.
  double NextGamma(double shape);

  /// Beta(alpha, beta) via two gamma draws.
  double NextBeta(double alpha, double beta);

  /// Samples an index in [0, weights.size()) with probability
  /// proportional to weights[i]. Weights must be non-negative with a
  /// positive sum; returns the last index on numerical underflow.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Fisher–Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextUint64(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Draws `k` distinct indices uniformly from [0, n) (k <= n),
  /// in random order. O(k) expected via Floyd's algorithm.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; useful for giving each
  /// agent or repetition its own stream.
  Rng Fork();

  /// Snapshot of the raw xoshiro256** state, for checkpointing a
  /// stream mid-flight. RestoreState resumes exactly where SaveState
  /// left off (an all-zero snapshot is rejected as degenerate and maps
  /// to the same guarded state Seed would produce).
  std::array<uint64_t, 4> SaveState() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void RestoreState(const std::array<uint64_t, 4>& state) {
    for (size_t i = 0; i < 4; ++i) s_[i] = state[i];
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

 private:
  uint64_t s_[4];
};

}  // namespace et

#endif  // ET_COMMON_RNG_H_
