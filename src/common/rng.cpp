#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace et {
namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& w : s_) w = SplitMix64(sm);
  // A theoretically possible but astronomically unlikely all-zero state
  // would make the generator degenerate; guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

double Rng::NextGamma(double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia–Tsang remark).
    const double g = NextGamma(shape + 1.0);
    double u;
    do {
      u = NextDouble();
    } while (u <= 0.0);
    return g * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::NextBeta(double alpha, double beta) {
  const double x = NextGamma(alpha);
  const double y = NextGamma(beta);
  const double s = x + y;
  if (s <= 0.0) return 0.5;
  return x / s;
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Numerical slack: fall back to the last positive-weight index.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm yields k distinct values; shuffle for random order.
  std::unordered_set<size_t> chosen;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = NextUint64(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  Shuffle(out);
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace et
