#include "common/clock.h"

#include <chrono>
#include <thread>

namespace et {
namespace {

class SystemClock : public Clock {
 public:
  uint64_t MonotonicNanos() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  uint64_t WallUnixMillis() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }

  void SleepForMillis(double ms) override {
    if (ms <= 0.0) return;
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<int64_t>(ms * 1e3)));
  }
};

}  // namespace

Clock* RealClock() {
  static Clock* clock = new SystemClock();
  return clock;
}

}  // namespace et
