// The clock seam of the serving stack.
//
// Two rules keep time handling honest (and simulatable):
//
//   1. Interval math — backoff deadlines, delta-snapshot rates, idle
//      ages — reads MonotonicNanos(), which never jumps. An NTP step
//      must not stretch or shrink a measured interval.
//   2. Wall-clock time exists only for *display* fields (snapshot
//      stamps, log lines) via WallUnixMillis(); nothing derives a
//      duration from two wall stamps.
//
// RealClock() is the process clock (steady_clock / system_clock /
// this_thread::sleep_for). ManualClock is a virtual clock the
// deterministic simulation harness (src/sim/) and tests drive
// explicitly: SleepForMillis advances virtual time instantly, and the
// two time bases can be skewed independently — which is exactly how
// the delta-snapshot wall-jump regression test works.

#ifndef ET_COMMON_CLOCK_H_
#define ET_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace et {

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since an arbitrary epoch. All interval and
  /// deadline arithmetic uses this base.
  virtual uint64_t MonotonicNanos() = 0;

  /// Wall-clock milliseconds since the Unix epoch. Display fields
  /// only; never subtract two of these.
  virtual uint64_t WallUnixMillis() = 0;

  /// Blocks the caller for `ms` (no-op for ms <= 0). Virtual clocks
  /// advance instead of blocking.
  virtual void SleepForMillis(double ms) = 0;
};

/// The process-wide real clock (leaked singleton; safe from any
/// thread, including during static destruction).
Clock* RealClock();

/// A hand-driven clock for tests and the simulation harness. Starts at
/// an arbitrary nonzero epoch. Thread-safe.
class ManualClock : public Clock {
 public:
  ManualClock() = default;

  uint64_t MonotonicNanos() override {
    return mono_ns_.load(std::memory_order_acquire);
  }
  uint64_t WallUnixMillis() override {
    return wall_ms_.load(std::memory_order_acquire);
  }

  /// Sleeping on a manual clock advances it (both bases): the sleeper
  /// "waits" in virtual time without blocking the thread.
  void SleepForMillis(double ms) override {
    if (ms <= 0.0) return;
    AdvanceMillis(ms);
  }

  /// Advances both bases together (the normal passage of time).
  void AdvanceMillis(double ms) {
    const uint64_t ns = static_cast<uint64_t>(ms * 1e6);
    mono_ns_.fetch_add(ns, std::memory_order_acq_rel);
    wall_ms_.fetch_add(static_cast<uint64_t>(ms),
                       std::memory_order_acq_rel);
  }

  /// Steps only the wall clock (an NTP jump). Monotonic time is
  /// unaffected — that is the whole point.
  void JumpWallMillis(int64_t delta_ms) {
    wall_ms_.fetch_add(static_cast<uint64_t>(delta_ms),
                       std::memory_order_acq_rel);
  }

 private:
  std::atomic<uint64_t> mono_ns_{uint64_t{1} << 30};
  std::atomic<uint64_t> wall_ms_{1700000000000ULL};
};

}  // namespace et

#endif  // ET_COMMON_CLOCK_H_
