// Result<T>: value-or-Status, the companion of Status for fallible
// functions that produce a value. Mirrors arrow::Result in spirit.

#ifndef ET_COMMON_RESULT_H_
#define ET_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace et {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced. Constructing a Result from an OK status
/// is a programming error (asserted in debug builds, converted to an
/// Internal error otherwise).
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status (failure).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok());
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The status: OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Accessors. Must not be called on an error Result.
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `alt` when this holds an error.
  T ValueOr(T alt) const {
    if (ok()) return value();
    return alt;
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace et

/// Propagates the error of a Result-returning expression, otherwise binds
/// its value to `lhs`. Usable in functions returning Status or Result.
#define ET_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define ET_ASSIGN_OR_RETURN(lhs, expr) \
  ET_ASSIGN_OR_RETURN_IMPL(ET_CONCAT_(_et_result_, __LINE__), lhs, expr)

#define ET_CONCAT_INNER_(a, b) a##b
#define ET_CONCAT_(a, b) ET_CONCAT_INNER_(a, b)

#endif  // ET_COMMON_RESULT_H_
