// Small numeric utilities shared across the library: stable softmax,
// entropy, Kahan summation, and simple descriptive statistics.

#ifndef ET_COMMON_MATH_H_
#define ET_COMMON_MATH_H_

#include <cstddef>
#include <vector>

namespace et {

/// Numerically stable softmax with temperature: out[i] ∝ exp(x[i]/temp).
/// temp must be > 0. Returns a proper distribution (sums to 1) even for
/// widely spread inputs.
std::vector<double> Softmax(const std::vector<double>& x, double temp);

/// Binary entropy H(p) = -p ln p - (1-p) ln(1-p), in nats; H(0)=H(1)=0.
double BinaryEntropy(double p);

/// Shannon entropy of a distribution (nats). Zero-probability entries
/// contribute 0; inputs are not renormalized.
double Entropy(const std::vector<double>& p);

/// Compensated (Kahan) accumulator for long experiment sums.
class KahanSum {
 public:
  void Add(double x) {
    const double y = x - c_;
    const double t = sum_ + y;
    c_ = (t - sum_) - y;
    sum_ = t;
  }
  double sum() const { return sum_; }

 private:
  double sum_ = 0.0;
  double c_ = 0.0;
};

/// Streaming mean / variance (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector; 0 for empty input.
double Mean(const std::vector<double>& v);

/// Mean absolute difference between two equal-length vectors.
double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace et

#endif  // ET_COMMON_MATH_H_
