#include "common/math.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace et {

std::vector<double> Softmax(const std::vector<double>& x, double temp) {
  assert(temp > 0.0);
  std::vector<double> out(x.size());
  if (x.empty()) return out;
  double mx = -std::numeric_limits<double>::infinity();
  for (double v : x) mx = std::max(mx, v / temp);
  double denom = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = std::exp(x[i] / temp - mx);
    denom += out[i];
  }
  for (double& v : out) v /= denom;
  return out;
}

double BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log(p) - (1.0 - p) * std::log(1.0 - p);
}

double Entropy(const std::vector<double>& p) {
  double h = 0.0;
  for (double v : p) {
    if (v > 0.0) h -= v * std::log(v);
  }
  return h;
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  KahanSum s;
  for (double x : v) s.Add(x);
  return s.sum() / static_cast<double>(v.size());
}

double MeanAbsoluteError(const std::vector<double>& a,
                         const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  KahanSum s;
  for (size_t i = 0; i < a.size(); ++i) s.Add(std::fabs(a[i] - b[i]));
  return s.sum() / static_cast<double>(a.size());
}

}  // namespace et
