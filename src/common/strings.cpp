#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace et {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
  return out;
}

Result<long long> ParseInt(std::string_view s) {
  const std::string t{Trim(s)};
  if (t.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(t.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer overflow: " + t);
  }
  if (end != t.c_str() + t.size()) {
    return Status::InvalidArgument("not an integer: " + t);
  }
  return v;
}

Result<double> ParseDouble(std::string_view s) {
  const std::string t{Trim(s)};
  if (t.empty()) return Status::InvalidArgument("empty double");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double overflow: " + t);
  }
  if (end != t.c_str() + t.size()) {
    return Status::InvalidArgument("not a double: " + t);
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args2);
    out.resize(static_cast<size_t>(n));
  }
  va_end(args2);
  return out;
}

}  // namespace et
