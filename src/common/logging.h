// Minimal leveled logging and check macros.
//
// ET_CHECK aborts on contract violations (programming errors); Status is
// used for expected runtime failures. This mirrors the split used by
// Arrow (DCHECK) and RocksDB (assert + Status).

#ifndef ET_COMMON_LOGGING_H_
#define ET_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace et {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: Info.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Stable name of a level ("DEBUG", "INFO", ...).
const char* LogLevelName(LogLevel level);

/// Small sequential id (1, 2, ...) for the calling thread, stable for
/// the thread's lifetime. Emitted in log lines and trace events so the
/// two can be correlated.
uint32_t CurrentThreadId();

/// One emitted log line, decomposed so alternative sinks (JSON-lines,
/// obs/jsonlog.h) can re-serialize it without re-parsing text.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";
  int line = 0;
  uint32_t thread_id = 0;
  /// Request the emitting thread was working for (task_context.h);
  /// 0 outside the serving path.
  uint64_t request_id = 0;
  /// "HH:MM:SS.mmm" local wall clock.
  std::string timestamp;
  std::string message;
};

using LogSink = std::function<void(const LogRecord&)>;

/// Replaces where completed log lines go. nullptr restores the default
/// human-readable stderr sink. The sink runs on the logging thread and
/// must be internally synchronized.
void SetLogSink(LogSink sink);

/// Formats `record` as the default human-readable line
/// ("[LEVEL HH:MM:SS.mmm Tn file:line] message\n") — exposed so custom
/// sinks can mirror the stderr format while adding their own output.
std::string FormatLogRecord(const LogRecord& record);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return ss_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream ss_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~FatalMessage();
  std::ostream& stream() { return ss_; }

 private:
  std::ostringstream ss_;
};

}  // namespace internal
}  // namespace et

#define ET_LOG(level)                                            \
  if (::et::LogLevel::k##level < ::et::GetLogLevel()) {          \
  } else                                                         \
    ::et::internal::LogMessage(::et::LogLevel::k##level,         \
                               __FILE__, __LINE__)               \
        .stream()

/// Aborts with a message when `cond` is false. Active in all build types:
/// the experiment harness must fail loudly, not produce wrong figures.
#define ET_CHECK(cond)                                              \
  if (cond) {                                                       \
  } else                                                            \
    ::et::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define ET_CHECK_OK(expr)                                  \
  do {                                                     \
    ::et::Status _st = (expr);                             \
    ET_CHECK(_st.ok()) << _st.ToString();                  \
  } while (0)

#endif  // ET_COMMON_LOGGING_H_
