// Status: lightweight error-propagation type in the Arrow/RocksDB idiom.
//
// Library code in this project does not throw exceptions on expected
// failure paths (bad input files, malformed configs, out-of-range
// arguments). Instead, fallible operations return a Status, or a
// Result<T> (see result.h) when they also produce a value.

#ifndef ET_COMMON_STATUS_H_
#define ET_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace et {

/// Error taxonomy for the whole library. Keep the list short: callers
/// almost always branch only on ok() vs !ok(); codes exist for tests and
/// diagnostics.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kFailedPrecondition = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kDeadlineExceeded = 9,
  /// Transient overload: the operation was rejected before doing any
  /// work and is safe to retry (the serving layer's backpressure
  /// signal, carried to clients with a retry-after hint).
  kUnavailable = 10,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// An (code, message) pair describing the outcome of a fallible call.
/// The OK status carries no allocation; error statuses carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  StatusCode code_;
  std::string msg_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace et

/// Propagates a non-OK Status to the caller. Usable only in functions
/// returning Status.
#define ET_RETURN_NOT_OK(expr)          \
  do {                                  \
    ::et::Status _st = (expr);          \
    if (!_st.ok()) return _st;          \
  } while (0)

#endif  // ET_COMMON_STATUS_H_
