// Fixed-size worker pool and a deterministic ParallelFor.
//
// The evaluation layer re-scores the full FD hypothesis space every
// game round and the experiment harness runs independent repetitions;
// both are embarrassingly parallel. ParallelFor splits an index range
// into contiguous chunks — one per configured thread, boundaries a
// pure function of (n, Parallelism()) — so callers that write only to
// per-index slots produce bit-identical output at any thread count.
// Reductions with order-dependent arithmetic (floating-point sums)
// must happen serially over the per-index results afterwards.
//
// Parallelism is process-wide: ET_THREADS in the environment (0 =
// hardware concurrency) or SetParallelism() from tool flags
// (--threads=N). The default, with neither, is hardware concurrency.
// Nested ParallelFor calls run inline on the calling thread, so
// parallel repetitions may freely call parallel scoring underneath.

#ifndef ET_COMMON_THREAD_POOL_H_
#define ET_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace et {

/// Fixed set of worker threads draining a shared task queue. Tasks must
/// not block on other tasks (ParallelFor keeps chunk 0 on the caller
/// and runs nested loops inline, so it never self-deadlocks).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const;

  /// Enqueues a task for any worker. Never blocks.
  void Submit(std::function<void()> task);

  /// Grows the pool to at least `n` workers (never shrinks). The
  /// one-worker-per-core default assumes CPU-bound tasks; callers
  /// whose tasks block on external I/O — the cluster router holds a
  /// worker for the duration of each forwarded request — need more
  /// workers than cores or a small machine serializes every forward
  /// (and a router chained to an in-process shard deadlocks: the
  /// blocked forward occupies the worker its own backend needs).
  void EnsureWorkers(size_t n);

  /// The process-wide pool, created on first use with one worker per
  /// hardware thread (leaked singleton, same rationale as the metrics
  /// registry: tasks may touch function-local statics at exit).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Number of chunks ParallelFor splits work into. Resolution order:
/// last SetParallelism() value, else ET_THREADS (0 = hardware), else
/// hardware concurrency. Always >= 1.
int Parallelism();

/// Overrides the process-wide parallelism; n <= 0 restores the
/// hardware-concurrency default.
void SetParallelism(int n);

/// Invokes fn(begin, end) over a deterministic partition of [0, n)
/// into Parallelism() contiguous chunks: chunk i = [i*n/T, (i+1)*n/T).
/// Chunk 0 runs on the calling thread; the rest on the global pool.
/// Blocks until every chunk finishes. The first exception (by chunk
/// index) is rethrown on the caller. Runs inline when T == 1, when
/// n < 2, when already inside a ParallelFor chunk, or when called from
/// a pool worker thread — a worker blocking on queued chunks can
/// deadlock the pool (all workers waiting, nobody left to run the
/// chunks), and the partition is boundary-deterministic so inline
/// execution yields bit-identical per-index output.
void ParallelFor(size_t n,
                 const std::function<void(size_t begin, size_t end)>& fn);

/// ParallelFor that converts an exception escaping any chunk into a
/// Status instead of rethrowing — the harness-boundary form: library
/// exceptions (and injected pool faults) surface to experiment code as
/// ordinary error Statuses, never as exceptions crossing the pool.
Status TryParallelFor(size_t n,
                      const std::function<void(size_t begin, size_t end)>& fn);

/// Installs a hook invoked at the top of every ParallelFor chunk body
/// (nullptr clears). Exceptions thrown by the hook are handled exactly
/// like exceptions from the chunk itself: captured per chunk and
/// rethrown on the calling thread (or converted to Status by
/// TryParallelFor). Used by the fault-injection layer to simulate task
/// failures; not a general extension point.
void SetParallelChunkHook(std::function<void()> hook);

/// Number of exceptions that have escaped directly-Submit()ed tasks.
/// The pool contains such exceptions — a throwing task (even during
/// shutdown drain) is logged and counted, never allowed to
/// std::terminate the process.
uint64_t PoolUncaughtTaskExceptions();

}  // namespace et

#endif  // ET_COMMON_THREAD_POOL_H_
