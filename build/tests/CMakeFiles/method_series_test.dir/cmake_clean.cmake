file(REMOVE_RECURSE
  "CMakeFiles/method_series_test.dir/exp/method_series_test.cpp.o"
  "CMakeFiles/method_series_test.dir/exp/method_series_test.cpp.o.d"
  "method_series_test"
  "method_series_test.pdb"
  "method_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
