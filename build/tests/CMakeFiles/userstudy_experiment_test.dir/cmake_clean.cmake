file(REMOVE_RECURSE
  "CMakeFiles/userstudy_experiment_test.dir/exp/userstudy_experiment_test.cpp.o"
  "CMakeFiles/userstudy_experiment_test.dir/exp/userstudy_experiment_test.cpp.o.d"
  "userstudy_experiment_test"
  "userstudy_experiment_test.pdb"
  "userstudy_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/userstudy_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
