# Empty dependencies file for userstudy_experiment_test.
# This may be replaced when dependencies are built.
