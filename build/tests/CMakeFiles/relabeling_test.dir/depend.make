# Empty dependencies file for relabeling_test.
# This may be replaced when dependencies are built.
