file(REMOVE_RECURSE
  "CMakeFiles/relabeling_test.dir/core/relabeling_test.cpp.o"
  "CMakeFiles/relabeling_test.dir/core/relabeling_test.cpp.o.d"
  "relabeling_test"
  "relabeling_test.pdb"
  "relabeling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relabeling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
