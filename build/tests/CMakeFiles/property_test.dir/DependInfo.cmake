
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property/property_test.cpp" "tests/CMakeFiles/property_test.dir/property/property_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/et_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/repair/CMakeFiles/et_repair.dir/DependInfo.cmake"
  "/root/repo/build/src/human/CMakeFiles/et_human.dir/DependInfo.cmake"
  "/root/repo/build/src/errgen/CMakeFiles/et_errgen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/et_core.dir/DependInfo.cmake"
  "/root/repo/build/src/belief/CMakeFiles/et_belief.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/et_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/et_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/et_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
