file(REMOVE_RECURSE
  "CMakeFiles/equilibrium_test.dir/core/equilibrium_test.cpp.o"
  "CMakeFiles/equilibrium_test.dir/core/equilibrium_test.cpp.o.d"
  "equilibrium_test"
  "equilibrium_test.pdb"
  "equilibrium_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equilibrium_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
