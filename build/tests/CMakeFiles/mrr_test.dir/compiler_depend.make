# Empty compiler generated dependencies file for mrr_test.
# This may be replaced when dependencies are built.
