file(REMOVE_RECURSE
  "CMakeFiles/mrr_test.dir/metrics/mrr_test.cpp.o"
  "CMakeFiles/mrr_test.dir/metrics/mrr_test.cpp.o.d"
  "mrr_test"
  "mrr_test.pdb"
  "mrr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
