# Empty compiler generated dependencies file for csv_experiment_test.
# This may be replaced when dependencies are built.
