file(REMOVE_RECURSE
  "CMakeFiles/csv_experiment_test.dir/exp/csv_experiment_test.cpp.o"
  "CMakeFiles/csv_experiment_test.dir/exp/csv_experiment_test.cpp.o.d"
  "csv_experiment_test"
  "csv_experiment_test.pdb"
  "csv_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csv_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
