file(REMOVE_RECURSE
  "CMakeFiles/violations_test.dir/fd/violations_test.cpp.o"
  "CMakeFiles/violations_test.dir/fd/violations_test.cpp.o.d"
  "violations_test"
  "violations_test.pdb"
  "violations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/violations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
