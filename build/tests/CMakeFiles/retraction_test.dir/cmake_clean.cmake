file(REMOVE_RECURSE
  "CMakeFiles/retraction_test.dir/belief/retraction_test.cpp.o"
  "CMakeFiles/retraction_test.dir/belief/retraction_test.cpp.o.d"
  "retraction_test"
  "retraction_test.pdb"
  "retraction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retraction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
