# Empty dependencies file for retraction_test.
# This may be replaced when dependencies are built.
