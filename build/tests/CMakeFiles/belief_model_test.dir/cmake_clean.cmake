file(REMOVE_RECURSE
  "CMakeFiles/belief_model_test.dir/belief/belief_model_test.cpp.o"
  "CMakeFiles/belief_model_test.dir/belief/belief_model_test.cpp.o.d"
  "belief_model_test"
  "belief_model_test.pdb"
  "belief_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/belief_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
