# Empty dependencies file for belief_model_test.
# This may be replaced when dependencies are built.
