file(REMOVE_RECURSE
  "CMakeFiles/learner_test.dir/core/learner_test.cpp.o"
  "CMakeFiles/learner_test.dir/core/learner_test.cpp.o.d"
  "learner_test"
  "learner_test.pdb"
  "learner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
