# Empty compiler generated dependencies file for beta_test.
# This may be replaced when dependencies are built.
