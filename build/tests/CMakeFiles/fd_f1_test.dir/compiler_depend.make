# Empty compiler generated dependencies file for fd_f1_test.
# This may be replaced when dependencies are built.
