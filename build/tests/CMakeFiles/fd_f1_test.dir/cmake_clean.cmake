file(REMOVE_RECURSE
  "CMakeFiles/fd_f1_test.dir/metrics/fd_f1_test.cpp.o"
  "CMakeFiles/fd_f1_test.dir/metrics/fd_f1_test.cpp.o.d"
  "fd_f1_test"
  "fd_f1_test.pdb"
  "fd_f1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_f1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
