file(REMOVE_RECURSE
  "CMakeFiles/priors_test.dir/belief/priors_test.cpp.o"
  "CMakeFiles/priors_test.dir/belief/priors_test.cpp.o.d"
  "priors_test"
  "priors_test.pdb"
  "priors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
