# Empty compiler generated dependencies file for priors_test.
# This may be replaced when dependencies are built.
