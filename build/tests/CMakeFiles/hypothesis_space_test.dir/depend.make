# Empty dependencies file for hypothesis_space_test.
# This may be replaced when dependencies are built.
