file(REMOVE_RECURSE
  "CMakeFiles/hypothesis_space_test.dir/fd/hypothesis_space_test.cpp.o"
  "CMakeFiles/hypothesis_space_test.dir/fd/hypothesis_space_test.cpp.o.d"
  "hypothesis_space_test"
  "hypothesis_space_test.pdb"
  "hypothesis_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypothesis_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
