# Empty compiler generated dependencies file for extended_policies_test.
# This may be replaced when dependencies are built.
