file(REMOVE_RECURSE
  "CMakeFiles/extended_policies_test.dir/core/extended_policies_test.cpp.o"
  "CMakeFiles/extended_policies_test.dir/core/extended_policies_test.cpp.o.d"
  "extended_policies_test"
  "extended_policies_test.pdb"
  "extended_policies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
