# Empty compiler generated dependencies file for attrset_test.
# This may be replaced when dependencies are built.
