file(REMOVE_RECURSE
  "CMakeFiles/attrset_test.dir/fd/attrset_test.cpp.o"
  "CMakeFiles/attrset_test.dir/fd/attrset_test.cpp.o.d"
  "attrset_test"
  "attrset_test.pdb"
  "attrset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attrset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
