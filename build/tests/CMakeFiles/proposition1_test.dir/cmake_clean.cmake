file(REMOVE_RECURSE
  "CMakeFiles/proposition1_test.dir/integration/proposition1_test.cpp.o"
  "CMakeFiles/proposition1_test.dir/integration/proposition1_test.cpp.o.d"
  "proposition1_test"
  "proposition1_test.pdb"
  "proposition1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proposition1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
