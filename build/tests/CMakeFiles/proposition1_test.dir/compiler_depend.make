# Empty compiler generated dependencies file for proposition1_test.
# This may be replaced when dependencies are built.
