# Empty dependencies file for ht_trainer_test.
# This may be replaced when dependencies are built.
