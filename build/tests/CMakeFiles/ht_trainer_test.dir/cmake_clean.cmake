file(REMOVE_RECURSE
  "CMakeFiles/ht_trainer_test.dir/core/ht_trainer_test.cpp.o"
  "CMakeFiles/ht_trainer_test.dir/core/ht_trainer_test.cpp.o.d"
  "ht_trainer_test"
  "ht_trainer_test.pdb"
  "ht_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ht_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
