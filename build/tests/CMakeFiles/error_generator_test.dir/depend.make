# Empty dependencies file for error_generator_test.
# This may be replaced when dependencies are built.
