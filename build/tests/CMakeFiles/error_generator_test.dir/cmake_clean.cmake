file(REMOVE_RECURSE
  "CMakeFiles/error_generator_test.dir/errgen/error_generator_test.cpp.o"
  "CMakeFiles/error_generator_test.dir/errgen/error_generator_test.cpp.o.d"
  "error_generator_test"
  "error_generator_test.pdb"
  "error_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
