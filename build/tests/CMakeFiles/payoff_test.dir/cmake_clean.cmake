file(REMOVE_RECURSE
  "CMakeFiles/payoff_test.dir/core/payoff_test.cpp.o"
  "CMakeFiles/payoff_test.dir/core/payoff_test.cpp.o.d"
  "payoff_test"
  "payoff_test.pdb"
  "payoff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payoff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
