# Empty compiler generated dependencies file for payoff_test.
# This may be replaced when dependencies are built.
