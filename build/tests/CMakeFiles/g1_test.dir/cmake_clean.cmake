file(REMOVE_RECURSE
  "CMakeFiles/g1_test.dir/fd/g1_test.cpp.o"
  "CMakeFiles/g1_test.dir/fd/g1_test.cpp.o.d"
  "g1_test"
  "g1_test.pdb"
  "g1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
