# Empty dependencies file for g1_test.
# This may be replaced when dependencies are built.
