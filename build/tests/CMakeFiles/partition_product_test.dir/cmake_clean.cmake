file(REMOVE_RECURSE
  "CMakeFiles/partition_product_test.dir/fd/partition_product_test.cpp.o"
  "CMakeFiles/partition_product_test.dir/fd/partition_product_test.cpp.o.d"
  "partition_product_test"
  "partition_product_test.pdb"
  "partition_product_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_product_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
