# Empty compiler generated dependencies file for partition_product_test.
# This may be replaced when dependencies are built.
