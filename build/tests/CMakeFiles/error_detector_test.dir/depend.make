# Empty dependencies file for error_detector_test.
# This may be replaced when dependencies are built.
