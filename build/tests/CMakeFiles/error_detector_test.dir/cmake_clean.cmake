file(REMOVE_RECURSE
  "CMakeFiles/error_detector_test.dir/fd/error_detector_test.cpp.o"
  "CMakeFiles/error_detector_test.dir/fd/error_detector_test.cpp.o.d"
  "error_detector_test"
  "error_detector_test.pdb"
  "error_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
