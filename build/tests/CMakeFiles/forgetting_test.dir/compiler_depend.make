# Empty compiler generated dependencies file for forgetting_test.
# This may be replaced when dependencies are built.
