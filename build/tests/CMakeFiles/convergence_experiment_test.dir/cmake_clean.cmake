file(REMOVE_RECURSE
  "CMakeFiles/convergence_experiment_test.dir/exp/convergence_experiment_test.cpp.o"
  "CMakeFiles/convergence_experiment_test.dir/exp/convergence_experiment_test.cpp.o.d"
  "convergence_experiment_test"
  "convergence_experiment_test.pdb"
  "convergence_experiment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_experiment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
