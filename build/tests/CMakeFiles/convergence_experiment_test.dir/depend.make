# Empty dependencies file for convergence_experiment_test.
# This may be replaced when dependencies are built.
