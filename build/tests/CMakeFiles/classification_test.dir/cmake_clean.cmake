file(REMOVE_RECURSE
  "CMakeFiles/classification_test.dir/metrics/classification_test.cpp.o"
  "CMakeFiles/classification_test.dir/metrics/classification_test.cpp.o.d"
  "classification_test"
  "classification_test.pdb"
  "classification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
