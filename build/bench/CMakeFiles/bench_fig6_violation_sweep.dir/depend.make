# Empty dependencies file for bench_fig6_violation_sweep.
# This may be replaced when dependencies are built.
