# Empty dependencies file for bench_ablation_relabeling.
# This may be replaced when dependencies are built.
