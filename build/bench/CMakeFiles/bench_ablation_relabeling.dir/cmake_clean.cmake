file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_relabeling.dir/bench_ablation_relabeling.cpp.o"
  "CMakeFiles/bench_ablation_relabeling.dir/bench_ablation_relabeling.cpp.o.d"
  "bench_ablation_relabeling"
  "bench_ablation_relabeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_relabeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
