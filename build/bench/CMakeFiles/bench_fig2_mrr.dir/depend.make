# Empty dependencies file for bench_fig2_mrr.
# This may be replaced when dependencies are built.
