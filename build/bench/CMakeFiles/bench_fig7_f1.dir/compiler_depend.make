# Empty compiler generated dependencies file for bench_fig7_f1.
# This may be replaced when dependencies are built.
