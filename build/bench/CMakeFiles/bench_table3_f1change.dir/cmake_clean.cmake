file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_f1change.dir/bench_table3_f1change.cpp.o"
  "CMakeFiles/bench_table3_f1change.dir/bench_table3_f1change.cpp.o.d"
  "bench_table3_f1change"
  "bench_table3_f1change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_f1change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
