# Empty dependencies file for bench_table3_f1change.
# This may be replaced when dependencies are built.
