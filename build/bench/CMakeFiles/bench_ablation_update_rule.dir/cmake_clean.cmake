file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_update_rule.dir/bench_ablation_update_rule.cpp.o"
  "CMakeFiles/bench_ablation_update_rule.dir/bench_ablation_update_rule.cpp.o.d"
  "bench_ablation_update_rule"
  "bench_ablation_update_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_update_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
