# Empty dependencies file for bench_ablation_update_rule.
# This may be replaced when dependencies are built.
