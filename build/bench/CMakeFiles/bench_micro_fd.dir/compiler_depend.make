# Empty compiler generated dependencies file for bench_micro_fd.
# This may be replaced when dependencies are built.
