file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_fd.dir/bench_micro_fd.cpp.o"
  "CMakeFiles/bench_micro_fd.dir/bench_micro_fd.cpp.o.d"
  "bench_micro_fd"
  "bench_micro_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
