file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_mae_all.dir/bench_fig4_mae_all.cpp.o"
  "CMakeFiles/bench_fig4_mae_all.dir/bench_fig4_mae_all.cpp.o.d"
  "bench_fig4_mae_all"
  "bench_fig4_mae_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mae_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
