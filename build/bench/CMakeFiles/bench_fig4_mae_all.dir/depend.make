# Empty dependencies file for bench_fig4_mae_all.
# This may be replaced when dependencies are built.
