# Empty dependencies file for bench_fig3_mae_uniform.
# This may be replaced when dependencies are built.
