file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_forgetting.dir/bench_ablation_forgetting.cpp.o"
  "CMakeFiles/bench_ablation_forgetting.dir/bench_ablation_forgetting.cpp.o.d"
  "bench_ablation_forgetting"
  "bench_ablation_forgetting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_forgetting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
