file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_mae.dir/bench_fig1_mae.cpp.o"
  "CMakeFiles/bench_fig1_mae.dir/bench_fig1_mae.cpp.o.d"
  "bench_fig1_mae"
  "bench_fig1_mae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
