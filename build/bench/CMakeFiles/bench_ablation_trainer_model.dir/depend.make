# Empty dependencies file for bench_ablation_trainer_model.
# This may be replaced when dependencies are built.
