file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_mae_all_uniform.dir/bench_fig5_mae_all_uniform.cpp.o"
  "CMakeFiles/bench_fig5_mae_all_uniform.dir/bench_fig5_mae_all_uniform.cpp.o.d"
  "bench_fig5_mae_all_uniform"
  "bench_fig5_mae_all_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_mae_all_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
