# Empty compiler generated dependencies file for bench_fig5_mae_all_uniform.
# This may be replaced when dependencies are built.
