file(REMOVE_RECURSE
  "CMakeFiles/et_repair_tool.dir/et_repair.cpp.o"
  "CMakeFiles/et_repair_tool.dir/et_repair.cpp.o.d"
  "et_repair"
  "et_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_repair_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
