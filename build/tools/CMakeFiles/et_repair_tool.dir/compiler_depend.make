# Empty compiler generated dependencies file for et_repair_tool.
# This may be replaced when dependencies are built.
