file(REMOVE_RECURSE
  "CMakeFiles/et_label.dir/et_label.cpp.o"
  "CMakeFiles/et_label.dir/et_label.cpp.o.d"
  "et_label"
  "et_label.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_label.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
