# Empty dependencies file for et_label.
# This may be replaced when dependencies are built.
