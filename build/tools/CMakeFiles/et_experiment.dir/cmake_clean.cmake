file(REMOVE_RECURSE
  "CMakeFiles/et_experiment.dir/et_experiment.cpp.o"
  "CMakeFiles/et_experiment.dir/et_experiment.cpp.o.d"
  "et_experiment"
  "et_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
