# Empty compiler generated dependencies file for et_experiment.
# This may be replaced when dependencies are built.
