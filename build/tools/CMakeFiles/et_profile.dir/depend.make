# Empty dependencies file for et_profile.
# This may be replaced when dependencies are built.
