file(REMOVE_RECURSE
  "CMakeFiles/et_profile.dir/et_profile.cpp.o"
  "CMakeFiles/et_profile.dir/et_profile.cpp.o.d"
  "et_profile"
  "et_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
