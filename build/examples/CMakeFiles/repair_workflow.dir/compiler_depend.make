# Empty compiler generated dependencies file for repair_workflow.
# This may be replaced when dependencies are built.
