file(REMOVE_RECURSE
  "CMakeFiles/repair_workflow.dir/repair_workflow.cpp.o"
  "CMakeFiles/repair_workflow.dir/repair_workflow.cpp.o.d"
  "repair_workflow"
  "repair_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
