# Empty dependencies file for user_study_replay.
# This may be replaced when dependencies are built.
