file(REMOVE_RECURSE
  "CMakeFiles/user_study_replay.dir/user_study_replay.cpp.o"
  "CMakeFiles/user_study_replay.dir/user_study_replay.cpp.o.d"
  "user_study_replay"
  "user_study_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_study_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
