# Empty compiler generated dependencies file for data_cleaning_session.
# This may be replaced when dependencies are built.
