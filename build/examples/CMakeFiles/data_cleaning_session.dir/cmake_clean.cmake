file(REMOVE_RECURSE
  "CMakeFiles/data_cleaning_session.dir/data_cleaning_session.cpp.o"
  "CMakeFiles/data_cleaning_session.dir/data_cleaning_session.cpp.o.d"
  "data_cleaning_session"
  "data_cleaning_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_cleaning_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
