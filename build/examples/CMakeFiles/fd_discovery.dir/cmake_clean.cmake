file(REMOVE_RECURSE
  "CMakeFiles/fd_discovery.dir/fd_discovery.cpp.o"
  "CMakeFiles/fd_discovery.dir/fd_discovery.cpp.o.d"
  "fd_discovery"
  "fd_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
