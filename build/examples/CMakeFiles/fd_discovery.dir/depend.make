# Empty dependencies file for fd_discovery.
# This may be replaced when dependencies are built.
