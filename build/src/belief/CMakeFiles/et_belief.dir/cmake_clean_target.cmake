file(REMOVE_RECURSE
  "libet_belief.a"
)
