# Empty dependencies file for et_belief.
# This may be replaced when dependencies are built.
