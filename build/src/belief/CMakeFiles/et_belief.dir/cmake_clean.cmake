file(REMOVE_RECURSE
  "CMakeFiles/et_belief.dir/belief_model.cpp.o"
  "CMakeFiles/et_belief.dir/belief_model.cpp.o.d"
  "CMakeFiles/et_belief.dir/beta.cpp.o"
  "CMakeFiles/et_belief.dir/beta.cpp.o.d"
  "CMakeFiles/et_belief.dir/priors.cpp.o"
  "CMakeFiles/et_belief.dir/priors.cpp.o.d"
  "CMakeFiles/et_belief.dir/serialize.cpp.o"
  "CMakeFiles/et_belief.dir/serialize.cpp.o.d"
  "CMakeFiles/et_belief.dir/update.cpp.o"
  "CMakeFiles/et_belief.dir/update.cpp.o.d"
  "libet_belief.a"
  "libet_belief.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_belief.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
