
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/belief/belief_model.cpp" "src/belief/CMakeFiles/et_belief.dir/belief_model.cpp.o" "gcc" "src/belief/CMakeFiles/et_belief.dir/belief_model.cpp.o.d"
  "/root/repo/src/belief/beta.cpp" "src/belief/CMakeFiles/et_belief.dir/beta.cpp.o" "gcc" "src/belief/CMakeFiles/et_belief.dir/beta.cpp.o.d"
  "/root/repo/src/belief/priors.cpp" "src/belief/CMakeFiles/et_belief.dir/priors.cpp.o" "gcc" "src/belief/CMakeFiles/et_belief.dir/priors.cpp.o.d"
  "/root/repo/src/belief/serialize.cpp" "src/belief/CMakeFiles/et_belief.dir/serialize.cpp.o" "gcc" "src/belief/CMakeFiles/et_belief.dir/serialize.cpp.o.d"
  "/root/repo/src/belief/update.cpp" "src/belief/CMakeFiles/et_belief.dir/update.cpp.o" "gcc" "src/belief/CMakeFiles/et_belief.dir/update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/et_data.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/et_fd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
