# Empty compiler generated dependencies file for et_exp.
# This may be replaced when dependencies are built.
