file(REMOVE_RECURSE
  "CMakeFiles/et_exp.dir/convergence_experiment.cpp.o"
  "CMakeFiles/et_exp.dir/convergence_experiment.cpp.o.d"
  "CMakeFiles/et_exp.dir/report.cpp.o"
  "CMakeFiles/et_exp.dir/report.cpp.o.d"
  "CMakeFiles/et_exp.dir/userstudy_experiment.cpp.o"
  "CMakeFiles/et_exp.dir/userstudy_experiment.cpp.o.d"
  "libet_exp.a"
  "libet_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
