file(REMOVE_RECURSE
  "libet_exp.a"
)
