file(REMOVE_RECURSE
  "libet_common.a"
)
