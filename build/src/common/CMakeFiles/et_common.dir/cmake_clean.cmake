file(REMOVE_RECURSE
  "CMakeFiles/et_common.dir/logging.cpp.o"
  "CMakeFiles/et_common.dir/logging.cpp.o.d"
  "CMakeFiles/et_common.dir/math.cpp.o"
  "CMakeFiles/et_common.dir/math.cpp.o.d"
  "CMakeFiles/et_common.dir/rng.cpp.o"
  "CMakeFiles/et_common.dir/rng.cpp.o.d"
  "CMakeFiles/et_common.dir/status.cpp.o"
  "CMakeFiles/et_common.dir/status.cpp.o.d"
  "CMakeFiles/et_common.dir/strings.cpp.o"
  "CMakeFiles/et_common.dir/strings.cpp.o.d"
  "libet_common.a"
  "libet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
