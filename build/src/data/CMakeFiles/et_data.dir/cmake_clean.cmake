file(REMOVE_RECURSE
  "CMakeFiles/et_data.dir/csv.cpp.o"
  "CMakeFiles/et_data.dir/csv.cpp.o.d"
  "CMakeFiles/et_data.dir/datasets.cpp.o"
  "CMakeFiles/et_data.dir/datasets.cpp.o.d"
  "CMakeFiles/et_data.dir/dictionary.cpp.o"
  "CMakeFiles/et_data.dir/dictionary.cpp.o.d"
  "CMakeFiles/et_data.dir/relation.cpp.o"
  "CMakeFiles/et_data.dir/relation.cpp.o.d"
  "CMakeFiles/et_data.dir/schema.cpp.o"
  "CMakeFiles/et_data.dir/schema.cpp.o.d"
  "CMakeFiles/et_data.dir/split.cpp.o"
  "CMakeFiles/et_data.dir/split.cpp.o.d"
  "libet_data.a"
  "libet_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
