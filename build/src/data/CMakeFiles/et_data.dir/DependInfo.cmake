
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cpp" "src/data/CMakeFiles/et_data.dir/csv.cpp.o" "gcc" "src/data/CMakeFiles/et_data.dir/csv.cpp.o.d"
  "/root/repo/src/data/datasets.cpp" "src/data/CMakeFiles/et_data.dir/datasets.cpp.o" "gcc" "src/data/CMakeFiles/et_data.dir/datasets.cpp.o.d"
  "/root/repo/src/data/dictionary.cpp" "src/data/CMakeFiles/et_data.dir/dictionary.cpp.o" "gcc" "src/data/CMakeFiles/et_data.dir/dictionary.cpp.o.d"
  "/root/repo/src/data/relation.cpp" "src/data/CMakeFiles/et_data.dir/relation.cpp.o" "gcc" "src/data/CMakeFiles/et_data.dir/relation.cpp.o.d"
  "/root/repo/src/data/schema.cpp" "src/data/CMakeFiles/et_data.dir/schema.cpp.o" "gcc" "src/data/CMakeFiles/et_data.dir/schema.cpp.o.d"
  "/root/repo/src/data/split.cpp" "src/data/CMakeFiles/et_data.dir/split.cpp.o" "gcc" "src/data/CMakeFiles/et_data.dir/split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
