file(REMOVE_RECURSE
  "CMakeFiles/et_errgen.dir/error_generator.cpp.o"
  "CMakeFiles/et_errgen.dir/error_generator.cpp.o.d"
  "libet_errgen.a"
  "libet_errgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_errgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
