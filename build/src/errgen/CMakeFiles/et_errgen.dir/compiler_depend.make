# Empty compiler generated dependencies file for et_errgen.
# This may be replaced when dependencies are built.
