file(REMOVE_RECURSE
  "libet_errgen.a"
)
