# Empty dependencies file for et_repair.
# This may be replaced when dependencies are built.
