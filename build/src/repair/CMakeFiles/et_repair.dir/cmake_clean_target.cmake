file(REMOVE_RECURSE
  "libet_repair.a"
)
