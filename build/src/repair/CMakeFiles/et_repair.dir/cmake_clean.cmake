file(REMOVE_RECURSE
  "CMakeFiles/et_repair.dir/repair.cpp.o"
  "CMakeFiles/et_repair.dir/repair.cpp.o.d"
  "libet_repair.a"
  "libet_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
