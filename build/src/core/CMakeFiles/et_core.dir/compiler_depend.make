# Empty compiler generated dependencies file for et_core.
# This may be replaced when dependencies are built.
