
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidates.cpp" "src/core/CMakeFiles/et_core.dir/candidates.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/candidates.cpp.o.d"
  "/root/repo/src/core/convergence.cpp" "src/core/CMakeFiles/et_core.dir/convergence.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/convergence.cpp.o.d"
  "/root/repo/src/core/equilibrium.cpp" "src/core/CMakeFiles/et_core.dir/equilibrium.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/equilibrium.cpp.o.d"
  "/root/repo/src/core/game.cpp" "src/core/CMakeFiles/et_core.dir/game.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/game.cpp.o.d"
  "/root/repo/src/core/inference.cpp" "src/core/CMakeFiles/et_core.dir/inference.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/inference.cpp.o.d"
  "/root/repo/src/core/learner.cpp" "src/core/CMakeFiles/et_core.dir/learner.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/learner.cpp.o.d"
  "/root/repo/src/core/payoff.cpp" "src/core/CMakeFiles/et_core.dir/payoff.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/payoff.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/core/CMakeFiles/et_core.dir/policies.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/policies.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/et_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/et_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/et_data.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/et_fd.dir/DependInfo.cmake"
  "/root/repo/build/src/belief/CMakeFiles/et_belief.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
