file(REMOVE_RECURSE
  "CMakeFiles/et_core.dir/candidates.cpp.o"
  "CMakeFiles/et_core.dir/candidates.cpp.o.d"
  "CMakeFiles/et_core.dir/convergence.cpp.o"
  "CMakeFiles/et_core.dir/convergence.cpp.o.d"
  "CMakeFiles/et_core.dir/equilibrium.cpp.o"
  "CMakeFiles/et_core.dir/equilibrium.cpp.o.d"
  "CMakeFiles/et_core.dir/game.cpp.o"
  "CMakeFiles/et_core.dir/game.cpp.o.d"
  "CMakeFiles/et_core.dir/inference.cpp.o"
  "CMakeFiles/et_core.dir/inference.cpp.o.d"
  "CMakeFiles/et_core.dir/learner.cpp.o"
  "CMakeFiles/et_core.dir/learner.cpp.o.d"
  "CMakeFiles/et_core.dir/payoff.cpp.o"
  "CMakeFiles/et_core.dir/payoff.cpp.o.d"
  "CMakeFiles/et_core.dir/policies.cpp.o"
  "CMakeFiles/et_core.dir/policies.cpp.o.d"
  "CMakeFiles/et_core.dir/trainer.cpp.o"
  "CMakeFiles/et_core.dir/trainer.cpp.o.d"
  "libet_core.a"
  "libet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
