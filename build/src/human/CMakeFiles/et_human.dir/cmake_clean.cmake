file(REMOVE_RECURSE
  "CMakeFiles/et_human.dir/annotator.cpp.o"
  "CMakeFiles/et_human.dir/annotator.cpp.o.d"
  "CMakeFiles/et_human.dir/scenarios.cpp.o"
  "CMakeFiles/et_human.dir/scenarios.cpp.o.d"
  "CMakeFiles/et_human.dir/study.cpp.o"
  "CMakeFiles/et_human.dir/study.cpp.o.d"
  "libet_human.a"
  "libet_human.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_human.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
