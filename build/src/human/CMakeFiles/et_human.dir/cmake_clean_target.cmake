file(REMOVE_RECURSE
  "libet_human.a"
)
