# Empty dependencies file for et_human.
# This may be replaced when dependencies are built.
