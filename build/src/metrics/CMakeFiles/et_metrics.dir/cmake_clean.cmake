file(REMOVE_RECURSE
  "CMakeFiles/et_metrics.dir/classification.cpp.o"
  "CMakeFiles/et_metrics.dir/classification.cpp.o.d"
  "CMakeFiles/et_metrics.dir/fd_f1.cpp.o"
  "CMakeFiles/et_metrics.dir/fd_f1.cpp.o.d"
  "CMakeFiles/et_metrics.dir/mrr.cpp.o"
  "CMakeFiles/et_metrics.dir/mrr.cpp.o.d"
  "CMakeFiles/et_metrics.dir/stats.cpp.o"
  "CMakeFiles/et_metrics.dir/stats.cpp.o.d"
  "libet_metrics.a"
  "libet_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
