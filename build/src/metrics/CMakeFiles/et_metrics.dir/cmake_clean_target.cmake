file(REMOVE_RECURSE
  "libet_metrics.a"
)
