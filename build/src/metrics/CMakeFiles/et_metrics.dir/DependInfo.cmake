
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/classification.cpp" "src/metrics/CMakeFiles/et_metrics.dir/classification.cpp.o" "gcc" "src/metrics/CMakeFiles/et_metrics.dir/classification.cpp.o.d"
  "/root/repo/src/metrics/fd_f1.cpp" "src/metrics/CMakeFiles/et_metrics.dir/fd_f1.cpp.o" "gcc" "src/metrics/CMakeFiles/et_metrics.dir/fd_f1.cpp.o.d"
  "/root/repo/src/metrics/mrr.cpp" "src/metrics/CMakeFiles/et_metrics.dir/mrr.cpp.o" "gcc" "src/metrics/CMakeFiles/et_metrics.dir/mrr.cpp.o.d"
  "/root/repo/src/metrics/stats.cpp" "src/metrics/CMakeFiles/et_metrics.dir/stats.cpp.o" "gcc" "src/metrics/CMakeFiles/et_metrics.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/et_data.dir/DependInfo.cmake"
  "/root/repo/build/src/fd/CMakeFiles/et_fd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
