# Empty compiler generated dependencies file for et_metrics.
# This may be replaced when dependencies are built.
