file(REMOVE_RECURSE
  "CMakeFiles/et_fd.dir/attrset.cpp.o"
  "CMakeFiles/et_fd.dir/attrset.cpp.o.d"
  "CMakeFiles/et_fd.dir/discovery.cpp.o"
  "CMakeFiles/et_fd.dir/discovery.cpp.o.d"
  "CMakeFiles/et_fd.dir/error_detector.cpp.o"
  "CMakeFiles/et_fd.dir/error_detector.cpp.o.d"
  "CMakeFiles/et_fd.dir/fd.cpp.o"
  "CMakeFiles/et_fd.dir/fd.cpp.o.d"
  "CMakeFiles/et_fd.dir/g1.cpp.o"
  "CMakeFiles/et_fd.dir/g1.cpp.o.d"
  "CMakeFiles/et_fd.dir/hypothesis_space.cpp.o"
  "CMakeFiles/et_fd.dir/hypothesis_space.cpp.o.d"
  "CMakeFiles/et_fd.dir/partition.cpp.o"
  "CMakeFiles/et_fd.dir/partition.cpp.o.d"
  "CMakeFiles/et_fd.dir/violations.cpp.o"
  "CMakeFiles/et_fd.dir/violations.cpp.o.d"
  "libet_fd.a"
  "libet_fd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/et_fd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
