# Empty dependencies file for et_fd.
# This may be replaced when dependencies are built.
