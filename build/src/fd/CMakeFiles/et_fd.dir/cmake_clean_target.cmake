file(REMOVE_RECURSE
  "libet_fd.a"
)
