
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fd/attrset.cpp" "src/fd/CMakeFiles/et_fd.dir/attrset.cpp.o" "gcc" "src/fd/CMakeFiles/et_fd.dir/attrset.cpp.o.d"
  "/root/repo/src/fd/discovery.cpp" "src/fd/CMakeFiles/et_fd.dir/discovery.cpp.o" "gcc" "src/fd/CMakeFiles/et_fd.dir/discovery.cpp.o.d"
  "/root/repo/src/fd/error_detector.cpp" "src/fd/CMakeFiles/et_fd.dir/error_detector.cpp.o" "gcc" "src/fd/CMakeFiles/et_fd.dir/error_detector.cpp.o.d"
  "/root/repo/src/fd/fd.cpp" "src/fd/CMakeFiles/et_fd.dir/fd.cpp.o" "gcc" "src/fd/CMakeFiles/et_fd.dir/fd.cpp.o.d"
  "/root/repo/src/fd/g1.cpp" "src/fd/CMakeFiles/et_fd.dir/g1.cpp.o" "gcc" "src/fd/CMakeFiles/et_fd.dir/g1.cpp.o.d"
  "/root/repo/src/fd/hypothesis_space.cpp" "src/fd/CMakeFiles/et_fd.dir/hypothesis_space.cpp.o" "gcc" "src/fd/CMakeFiles/et_fd.dir/hypothesis_space.cpp.o.d"
  "/root/repo/src/fd/partition.cpp" "src/fd/CMakeFiles/et_fd.dir/partition.cpp.o" "gcc" "src/fd/CMakeFiles/et_fd.dir/partition.cpp.o.d"
  "/root/repo/src/fd/violations.cpp" "src/fd/CMakeFiles/et_fd.dir/violations.cpp.o" "gcc" "src/fd/CMakeFiles/et_fd.dir/violations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/et_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/et_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
